(** The typed counter/gauge registry, aggregated lock-free across
    domains.

    Counters are process-global [Atomic.t] cells: increments from
    concurrent solver tasks commute, so the final totals are
    independent of the job count and of scheduling.  Collection is
    always on — one [fetch_and_add] per {e solve} or {e local-search
    run}, never per move — and nothing is ever printed unless a
    {!Sink} is asked to emit, so the default build's output is
    untouched.

    The catalogue (see docs/OBSERVABILITY.md):
    - solver work: 2-opt / 3-opt improving moves, double-bridge kicks,
      restarts (construction starts), exact vs heuristic solves;
    - degradation: budget exhaustions, fallback transitions;
    - engine: tasks executed;
    - validation: lint diagnostics by severity, alignment certificates
      checked and failed (the ba_check layer);
    and two gauges (candidate-list width, job count) plus the
    gap-to-Held–Karp distribution observed per procedure. *)

type counter =
  | Moves_2opt  (** improving 2-opt moves applied *)
  | Moves_3opt  (** improving pure-3-opt moves applied *)
  | Kicks  (** double-bridge perturbations *)
  | Restarts  (** solver construction starts (runs) *)
  | Exact_solves  (** instances solved to proven optimality *)
  | Heuristic_solves  (** instances solved by iterated 3-opt *)
  | Budget_exhaustions  (** solves that hit the wall-clock/move budget *)
  | Fallbacks  (** procedures degraded along the method chain *)
  | Tasks_run  (** engine tasks executed *)
  | Lint_errors  (** Error-severity lint diagnostics emitted *)
  | Lint_warnings  (** Warning-severity lint diagnostics emitted *)
  | Lint_infos  (** Info-severity lint diagnostics emitted *)
  | Certs_checked  (** alignment certificates validated *)
  | Certs_failed  (** alignment certificates rejected *)
  | Serve_requests  (** align requests accepted by the daemon *)
  | Serve_ok  (** certified layouts returned *)
  | Serve_errors  (** typed-error responses returned *)
  | Serve_protocol_errors  (** malformed frames / undecodable requests *)
  | Serve_cache_hits  (** exact layout-cache hits (re-certified) *)
  | Serve_cache_misses  (** cache misses (fresh solves) *)
  | Serve_cache_poisoned  (** cached layouts rejected by certification *)
  | Serve_warm_starts  (** drift hits: 3-Opt seeded from the cached tour *)
  | Moves_array_repr  (** improving moves applied on the flat tour arrays *)
  | Moves_two_level_repr  (** improving moves applied on the two-level tour *)
  | Run_ns_array_repr  (** ns spent inside 3-Opt runs, flat representation *)
  | Run_ns_two_level_repr  (** ns spent inside 3-Opt runs, two-level *)
  | Segment_splits  (** two-level segment boundary splits *)
  | Segment_rebalances  (** two-level O(n) rebuilds *)

let all_counters =
  [
    (Moves_2opt, "solver.moves.2opt");
    (Moves_3opt, "solver.moves.3opt");
    (Kicks, "solver.kicks");
    (Restarts, "solver.restarts");
    (Exact_solves, "solver.exact_solves");
    (Heuristic_solves, "solver.heuristic_solves");
    (Budget_exhaustions, "solver.budget_exhaustions");
    (Fallbacks, "align.fallbacks");
    (Tasks_run, "engine.tasks_run");
    (Lint_errors, "lint.errors");
    (Lint_warnings, "lint.warnings");
    (Lint_infos, "lint.infos");
    (Certs_checked, "check.certs_checked");
    (Certs_failed, "check.certs_failed");
    (Serve_requests, "serve.requests");
    (Serve_ok, "serve.responses_ok");
    (Serve_errors, "serve.responses_error");
    (Serve_protocol_errors, "serve.protocol_errors");
    (Serve_cache_hits, "serve.cache_hits");
    (Serve_cache_misses, "serve.cache_misses");
    (Serve_cache_poisoned, "serve.cache_poisoned");
    (Serve_warm_starts, "serve.warm_starts");
    (Moves_array_repr, "solver.moves.array_repr");
    (Moves_two_level_repr, "solver.moves.two_level_repr");
    (Run_ns_array_repr, "solver.run_ns.array_repr");
    (Run_ns_two_level_repr, "solver.run_ns.two_level_repr");
    (Segment_splits, "solver.segment_splits");
    (Segment_rebalances, "solver.segment_rebalances");
  ]

let counter_name c = List.assoc c all_counters

let counter_index = function
  | Moves_2opt -> 0
  | Moves_3opt -> 1
  | Kicks -> 2
  | Restarts -> 3
  | Exact_solves -> 4
  | Heuristic_solves -> 5
  | Budget_exhaustions -> 6
  | Fallbacks -> 7
  | Tasks_run -> 8
  | Lint_errors -> 9
  | Lint_warnings -> 10
  | Lint_infos -> 11
  | Certs_checked -> 12
  | Certs_failed -> 13
  | Serve_requests -> 14
  | Serve_ok -> 15
  | Serve_errors -> 16
  | Serve_protocol_errors -> 17
  | Serve_cache_hits -> 18
  | Serve_cache_misses -> 19
  | Serve_cache_poisoned -> 20
  | Serve_warm_starts -> 21
  | Moves_array_repr -> 22
  | Moves_two_level_repr -> 23
  | Run_ns_array_repr -> 24
  | Run_ns_two_level_repr -> 25
  | Segment_splits -> 26
  | Segment_rebalances -> 27

let n_counters = List.length all_counters
let counters : int Atomic.t array = Array.init n_counters (fun _ -> Atomic.make 0)

let incr ?(n = 1) c =
  if n <> 0 then ignore (Atomic.fetch_and_add counters.(counter_index c) n)

let get c = Atomic.get counters.(counter_index c)

(* ---------------- gauges ---------------- *)

type gauge =
  | Neighbor_width  (** 3-opt candidate-list width (last solve's config) *)
  | Jobs  (** executor domain count of the last fan-out *)
  | Serve_queue_depth  (** complete frames buffered but not yet handled *)
  | Serve_in_flight  (** requests currently being handled *)
  | Serve_cache_entries  (** live layout-cache entries *)
  | Tsp_repr  (** tour representation of the last init (0 flat, 1 two-level) *)
  | Tsp_segments  (** two-level segment count after the last run *)

let all_gauges =
  [
    (Neighbor_width, "solver.neighbor_width");
    (Jobs, "engine.jobs");
    (Serve_queue_depth, "serve.queue_depth");
    (Serve_in_flight, "serve.in_flight");
    (Serve_cache_entries, "serve.cache_entries");
    (Tsp_repr, "tsp.repr");
    (Tsp_segments, "tsp.segments");
  ]

let gauge_name g = List.assoc g all_gauges

let gauge_index = function
  | Neighbor_width -> 0
  | Jobs -> 1
  | Serve_queue_depth -> 2
  | Serve_in_flight -> 3
  | Serve_cache_entries -> 4
  | Tsp_repr -> 5
  | Tsp_segments -> 6

let gauges : int Atomic.t array = Array.init 7 (fun _ -> Atomic.make 0)
let set_gauge g v = Atomic.set gauges.(gauge_index g) v
let get_gauge g = Atomic.get gauges.(gauge_index g)

(* ---------------- gap-to-Held–Karp distribution ---------------- *)

(* fixed-point micro-units so the aggregate stays lock-free on int
   atomics; gaps are small ratios, so micro precision is plenty *)
let gap_count = Atomic.make 0
let gap_sum_micro = Atomic.make 0
let gap_max_micro = Atomic.make 0

(** [observe_hk_gap g] records one procedure's relative gap between the
    solved penalty and its Held–Karp lower bound (clamped at 0). *)
let observe_hk_gap g =
  let micro = int_of_float (Float.max 0. g *. 1e6) in
  ignore (Atomic.fetch_and_add gap_count 1);
  ignore (Atomic.fetch_and_add gap_sum_micro micro);
  let rec raise_max () =
    let cur = Atomic.get gap_max_micro in
    if micro > cur && not (Atomic.compare_and_set gap_max_micro cur micro) then
      raise_max ()
  in
  raise_max ()

type gap_summary = { count : int; mean : float; max : float }

let hk_gap () =
  let n = Atomic.get gap_count in
  {
    count = n;
    mean =
      (if n = 0 then 0.
       else float_of_int (Atomic.get gap_sum_micro) /. 1e6 /. float_of_int n);
    max = float_of_int (Atomic.get gap_max_micro) /. 1e6;
  }

(* ---------------- request-latency distribution ---------------- *)

(* A fixed log-spaced histogram over microseconds, 4 buckets per
   octave: bucket i covers [2^(i/4), 2^((i+1)/4)) µs, so 96 buckets
   span ~1 µs to ~14 s with ≤19% relative resolution.  All cells are
   int atomics — observation is lock-free and allocation-free, which
   keeps the serve hot path honest about its own overhead. *)
let lat_buckets = 96
let lat_hist : int Atomic.t array = Array.init lat_buckets (fun _ -> Atomic.make 0)
let lat_count = Atomic.make 0
let lat_sum_micro = Atomic.make 0
let lat_max_micro = Atomic.make 0

let lat_bucket_of_us us =
  if us <= 1. then 0
  else min (lat_buckets - 1) (int_of_float (4. *. (log us /. log 2.)))

(* geometric midpoint of bucket [i], in milliseconds *)
let lat_bucket_mid_ms i = Float.pow 2. ((float_of_int i +. 0.5) /. 4.) /. 1000.

(** [observe_latency_ms ms] records one request's wall-clock latency. *)
let observe_latency_ms ms =
  let us = Float.max 0. ms *. 1000. in
  let micro = int_of_float us in
  ignore (Atomic.fetch_and_add lat_hist.(lat_bucket_of_us us) 1);
  ignore (Atomic.fetch_and_add lat_count 1);
  ignore (Atomic.fetch_and_add lat_sum_micro micro);
  let rec raise_max () =
    let cur = Atomic.get lat_max_micro in
    if micro > cur && not (Atomic.compare_and_set lat_max_micro cur micro) then
      raise_max ()
  in
  raise_max ()

type latency_summary = {
  l_count : int;
  mean_ms : float;
  p50_ms : float;  (** bucket-resolution estimate (≤19% relative error) *)
  p95_ms : float;
  max_ms : float;  (** exact *)
}

(** [percentile_ms q] walks the histogram for the [q]-quantile bucket
    (0 when nothing was observed). *)
let percentile_ms q =
  let n = Atomic.get lat_count in
  if n = 0 then 0.
  else begin
    let target = Float.max 1. (Float.of_int n *. q) in
    let acc = ref 0 and found = ref (lat_buckets - 1) and i = ref 0 in
    (* Stdlib.incr: this module shadows [incr] with the counter API *)
    while !i < lat_buckets && float_of_int !acc < target do
      acc := !acc + Atomic.get lat_hist.(!i);
      if float_of_int !acc >= target then found := !i;
      i := !i + 1
    done;
    lat_bucket_mid_ms !found
  end

let latency () =
  let n = Atomic.get lat_count in
  {
    l_count = n;
    mean_ms =
      (if n = 0 then 0.
       else float_of_int (Atomic.get lat_sum_micro) /. 1000. /. float_of_int n);
    p50_ms = percentile_ms 0.5;
    p95_ms = percentile_ms 0.95;
    max_ms = float_of_int (Atomic.get lat_max_micro) /. 1000.;
  }

(* ---------------- snapshot / reset ---------------- *)

(** One immutable read-out of the whole registry, for sinks. *)
type snapshot = {
  counter_values : (string * int) list;  (** catalogue order *)
  gauge_values : (string * int) list;
  gap : gap_summary;
  lat : latency_summary;
}

let snapshot () =
  {
    counter_values = List.map (fun (c, name) -> (name, get c)) all_counters;
    gauge_values = List.map (fun (g, name) -> (name, get_gauge g)) all_gauges;
    gap = hk_gap ();
    lat = latency ();
  }

(** Zero every cell (tests only — production code never resets). *)
let reset () =
  Array.iter (fun a -> Atomic.set a 0) counters;
  Array.iter (fun a -> Atomic.set a 0) gauges;
  Atomic.set gap_count 0;
  Atomic.set gap_sum_micro 0;
  Atomic.set gap_max_micro 0;
  Array.iter (fun a -> Atomic.set a 0) lat_hist;
  Atomic.set lat_count 0;
  Atomic.set lat_sum_micro 0;
  Atomic.set lat_max_micro 0
