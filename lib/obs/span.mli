(** Per-task span buffers: named intervals on the observability clock,
    single-writer while the task runs, immutable after the join.  A
    disabled buffer records nothing and costs one branch per span. *)

type span = {
  id : int;  (** per-task open order, 0-based *)
  parent : int;  (** id of the enclosing span; -1 for a root *)
  task : int;  (** owning task id *)
  name : string;
  start_ns : int64;
  stop_ns : int64;
}

type buf

(** [create ~task ~enabled] is a fresh empty buffer owned by [task]. *)
val create : task:int -> enabled:bool -> buf

(** The shared disabled buffer, for callers with nothing to trace. *)
val null : buf

val enabled : buf -> bool

(** [with_span buf name f] runs [f ()] inside a span named [name]; the
    span closes even if [f] raises.  Disabled buffer: exactly [f ()]. *)
val with_span : buf -> string -> (unit -> 'a) -> 'a

(** Completed spans in open order. *)
val spans : buf -> span array

val duration_ns : span -> int64
