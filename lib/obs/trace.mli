(** Process-wide trace collection and Chrome [trace_event] export.
    Off by default; span buffers arrive per joined task and are merged
    in deterministic arrival order (task index order per fan-out). *)

type group = { seq : int; task : int; label : string; spans : Span.span array }

(** Flip tracing (read by the engine when creating task span buffers). *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** Hand one joined task's spans to the trace (no-op when empty). *)
val add_task : label:string -> task:int -> Span.span array -> unit

(** Drop all collected groups (tests). *)
val clear : unit -> unit

(** Collected groups in arrival order. *)
val all_groups : unit -> group list

(** The trace as a Chrome [trace_event] document: one [tid] (span
    group) per task, stage spans nested by time containment,
    timestamps rebased to the earliest span. *)
val to_chrome : unit -> Json.t

val write_chrome : string -> unit
