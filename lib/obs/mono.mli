(** Nanosecond observability clock (see the implementation note on the
    gettimeofday stand-in). *)

val now_ns : unit -> int64
val ns_to_us : int64 -> float
