(** Metric sinks: where a {!Metrics.snapshot} goes when the run ends.

    - {!Null} — the default; nothing is rendered, nothing is written.
      Combined with always-on (but print-free) collection this keeps
      the default build's output byte-identical to a build without
      observability.
    - {!Stderr} — a human-readable summary on stderr, for interactive
      runs (stderr so deterministic stdout diffs stay clean).
    - [Json_file p] / [Csv_file p] — machine-readable snapshots. *)

type t = Null | Stderr | Json_file of string | Csv_file of string

(** [of_spec s] maps a [--metrics] argument to a sink: ["-"] or
    ["stderr"] → {!Stderr}; [*.csv] → CSV; anything else → JSON. *)
let of_spec = function
  | "-" | "stderr" -> Stderr
  | p when Filename.check_suffix p ".csv" -> Csv_file p
  | p -> Json_file p

let snapshot_json (s : Metrics.snapshot) : Json.t =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.Metrics.counter_values) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.Metrics.gauge_values) );
      ( "hk_gap",
        Json.Obj
          [
            ("count", Json.Int s.Metrics.gap.Metrics.count);
            ("mean", Json.Float s.Metrics.gap.Metrics.mean);
            ("max", Json.Float s.Metrics.gap.Metrics.max);
          ] );
      ( "latency_ms",
        Json.Obj
          [
            ("count", Json.Int s.Metrics.lat.Metrics.l_count);
            ("mean", Json.Float s.Metrics.lat.Metrics.mean_ms);
            ("p50", Json.Float s.Metrics.lat.Metrics.p50_ms);
            ("p95", Json.Float s.Metrics.lat.Metrics.p95_ms);
            ("max", Json.Float s.Metrics.lat.Metrics.max_ms);
          ] );
    ]

let snapshot_csv (s : Metrics.snapshot) : string list =
  "metric,value"
  :: (List.map (fun (k, v) -> Printf.sprintf "%s,%d" k v) s.Metrics.counter_values
     @ List.map (fun (k, v) -> Printf.sprintf "%s,%d" k v) s.Metrics.gauge_values
     @ [
         Printf.sprintf "hk_gap.count,%d" s.Metrics.gap.Metrics.count;
         Printf.sprintf "hk_gap.mean,%.6f" s.Metrics.gap.Metrics.mean;
         Printf.sprintf "hk_gap.max,%.6f" s.Metrics.gap.Metrics.max;
         Printf.sprintf "latency_ms.count,%d" s.Metrics.lat.Metrics.l_count;
         Printf.sprintf "latency_ms.mean,%.6f" s.Metrics.lat.Metrics.mean_ms;
         Printf.sprintf "latency_ms.p50,%.6f" s.Metrics.lat.Metrics.p50_ms;
         Printf.sprintf "latency_ms.p95,%.6f" s.Metrics.lat.Metrics.p95_ms;
         Printf.sprintf "latency_ms.max,%.6f" s.Metrics.lat.Metrics.max_ms;
       ])

let emit_snapshot (sink : t) (s : Metrics.snapshot) =
  match sink with
  | Null -> ()
  | Stderr ->
      Fmt.epr "--- metrics ---@.";
      List.iter
        (fun (k, v) -> if v <> 0 then Fmt.epr "%-28s %12d@." k v)
        (s.Metrics.counter_values @ s.Metrics.gauge_values);
      if s.Metrics.gap.Metrics.count > 0 then
        Fmt.epr "%-28s n=%d mean=%.4f max=%.4f@." "hk_gap"
          s.Metrics.gap.Metrics.count s.Metrics.gap.Metrics.mean
          s.Metrics.gap.Metrics.max;
      if s.Metrics.lat.Metrics.l_count > 0 then
        Fmt.epr "%-28s n=%d p50=%.3fms p95=%.3fms max=%.3fms@." "latency"
          s.Metrics.lat.Metrics.l_count s.Metrics.lat.Metrics.p50_ms
          s.Metrics.lat.Metrics.p95_ms s.Metrics.lat.Metrics.max_ms
  | Json_file p -> Json.write_file p (snapshot_json s)
  | Csv_file p ->
      let oc = open_out p in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          List.iter
            (fun line ->
              output_string oc line;
              output_char oc '\n')
            (snapshot_csv s))

(** [emit sink] renders the current global registry through [sink]. *)
let emit sink = emit_snapshot sink (Metrics.snapshot ())
