(** A minimal JSON tree: enough to emit the observability artifacts
    (Chrome traces, metric snapshots, bench trajectories) and to parse
    them back for validation in tests — no external dependency.

    Emission is canonical: object keys keep insertion order, floats
    print as ["%.6f"], strings are escaped per RFC 8259.  The parser
    accepts exactly the JSON subset any conforming writer produces
    (no comments, no trailing commas); numbers with a fraction or
    exponent come back as [Float], bare integers as [Int]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------------- emission ---------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if not (Float.is_finite f) then Buffer.add_string b "null"
      else Buffer.add_string b (Printf.sprintf "%.6f" f)
  | String s -> escape_string b s
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          emit b v)
        l;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          emit b v)
        kvs;
      Buffer.add_char b '}'

let to_string (v : t) : string =
  let b = Buffer.create 1024 in
  emit b v;
  Buffer.contents b

let write_file path (v : t) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

(* ---------------- parsing ---------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "at byte %d: %s" cur.pos msg))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cur;
        true
    | _ -> false
  do
    ()
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | Some c' -> fail cur (Printf.sprintf "expected %c, found %c" c c')
  | None -> fail cur (Printf.sprintf "expected %c, found end of input" c)

let parse_literal cur lit value =
  if
    cur.pos + String.length lit <= String.length cur.src
    && String.sub cur.src cur.pos (String.length lit) = lit
  then begin
    cur.pos <- cur.pos + String.length lit;
    value
  end
  else fail cur (Printf.sprintf "expected %s" lit)

let parse_string_body cur =
  expect cur '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | Some '"' -> advance cur; Buffer.add_char b '"'; loop ()
        | Some '\\' -> advance cur; Buffer.add_char b '\\'; loop ()
        | Some '/' -> advance cur; Buffer.add_char b '/'; loop ()
        | Some 'n' -> advance cur; Buffer.add_char b '\n'; loop ()
        | Some 'r' -> advance cur; Buffer.add_char b '\r'; loop ()
        | Some 't' -> advance cur; Buffer.add_char b '\t'; loop ()
        | Some 'b' -> advance cur; Buffer.add_char b '\b'; loop ()
        | Some 'f' -> advance cur; Buffer.add_char b '\012'; loop ()
        | Some 'u' ->
            advance cur;
            if cur.pos + 4 > String.length cur.src then fail cur "bad \\u escape";
            let hex = String.sub cur.src cur.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail cur "bad \\u escape"
            in
            cur.pos <- cur.pos + 4;
            (* decode as UTF-8; the emitter only produces < 0x20 *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else begin
              Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
            end;
            loop ()
        | _ -> fail cur "bad escape")
    | Some c ->
        advance cur;
        Buffer.add_char b c;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number cur =
  let start = cur.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek cur with Some c -> is_num_char c | None -> false) do
    advance cur
  done;
  let s = String.sub cur.src start (cur.pos - start) in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
  then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail cur (Printf.sprintf "bad number %s" s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> fail cur (Printf.sprintf "bad number %s" s)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> parse_literal cur "null" Null
  | Some 't' -> parse_literal cur "true" (Bool true)
  | Some 'f' -> parse_literal cur "false" (Bool false)
  | Some '"' -> String (parse_string_body cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let items = ref [ parse_value cur ] in
        skip_ws cur;
        while peek cur = Some ',' do
          advance cur;
          items := parse_value cur :: !items;
          skip_ws cur
        done;
        expect cur ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let field () =
          skip_ws cur;
          let k = parse_string_body cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws cur;
        while peek cur = Some ',' do
          advance cur;
          fields := field () :: !fields;
          skip_ws cur
        done;
        expect cur '}';
        Obj (List.rev !fields)
      end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character %c" c)

let parse (s : string) : (t, string) result =
  let cur = { src = s; pos = 0 } in
  match
    let v = parse_value cur in
    skip_ws cur;
    if cur.pos <> String.length s then fail cur "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* ---------------- accessors ---------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_str = function String s -> Some s | _ -> None
