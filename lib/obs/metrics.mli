(** Process-global typed counters and gauges, aggregated lock-free
    across domains (increments commute, so totals are independent of
    job count).  Collection is always on; emission only happens when a
    {!Sink} is asked.  Catalogue: docs/OBSERVABILITY.md. *)

type counter =
  | Moves_2opt
  | Moves_3opt
  | Kicks
  | Restarts
  | Exact_solves
  | Heuristic_solves
  | Budget_exhaustions
  | Fallbacks
  | Tasks_run
  | Lint_errors
  | Lint_warnings
  | Lint_infos
  | Certs_checked
  | Certs_failed
  | Serve_requests
  | Serve_ok
  | Serve_errors
  | Serve_protocol_errors
  | Serve_cache_hits
  | Serve_cache_misses
  | Serve_cache_poisoned
  | Serve_warm_starts
  | Moves_array_repr
  | Moves_two_level_repr
  | Run_ns_array_repr
  | Run_ns_two_level_repr
  | Segment_splits
  | Segment_rebalances

(** Every counter with its stable snapshot name, in catalogue order. *)
val all_counters : (counter * string) list

val counter_name : counter -> string

(** [incr ?n c] atomically adds [n] (default 1); [n = 0] is free. *)
val incr : ?n:int -> counter -> unit

val get : counter -> int

type gauge =
  | Neighbor_width
  | Jobs
  | Serve_queue_depth
  | Serve_in_flight
  | Serve_cache_entries
  | Tsp_repr
  | Tsp_segments

val all_gauges : (gauge * string) list
val gauge_name : gauge -> string
val set_gauge : gauge -> int -> unit
val get_gauge : gauge -> int

(** Record one procedure's relative gap to its Held–Karp bound. *)
val observe_hk_gap : float -> unit

type gap_summary = { count : int; mean : float; max : float }

val hk_gap : unit -> gap_summary

(** Record one serve request's wall-clock latency into the lock-free
    log-bucket histogram (4 buckets per octave, ~1 µs – 14 s). *)
val observe_latency_ms : float -> unit

type latency_summary = {
  l_count : int;
  mean_ms : float;
  p50_ms : float;  (** histogram estimate, ≤19% relative error *)
  p95_ms : float;
  max_ms : float;  (** exact *)
}

val latency : unit -> latency_summary

type snapshot = {
  counter_values : (string * int) list;
  gauge_values : (string * int) list;
  gap : gap_summary;
  lat : latency_summary;
}

val snapshot : unit -> snapshot

(** Zero the registry (tests only). *)
val reset : unit -> unit
