(** Process-global typed counters and gauges, aggregated lock-free
    across domains (increments commute, so totals are independent of
    job count).  Collection is always on; emission only happens when a
    {!Sink} is asked.  Catalogue: docs/OBSERVABILITY.md. *)

type counter =
  | Moves_2opt
  | Moves_3opt
  | Kicks
  | Restarts
  | Exact_solves
  | Heuristic_solves
  | Budget_exhaustions
  | Fallbacks
  | Tasks_run
  | Lint_errors
  | Lint_warnings
  | Lint_infos
  | Certs_checked
  | Certs_failed

(** Every counter with its stable snapshot name, in catalogue order. *)
val all_counters : (counter * string) list

val counter_name : counter -> string

(** [incr ?n c] atomically adds [n] (default 1); [n = 0] is free. *)
val incr : ?n:int -> counter -> unit

val get : counter -> int

type gauge = Neighbor_width | Jobs

val all_gauges : (gauge * string) list
val gauge_name : gauge -> string
val set_gauge : gauge -> int -> unit
val get_gauge : gauge -> int

(** Record one procedure's relative gap to its Held–Karp bound. *)
val observe_hk_gap : float -> unit

type gap_summary = { count : int; mean : float; max : float }

val hk_gap : unit -> gap_summary

type snapshot = {
  counter_values : (string * int) list;
  gauge_values : (string * int) list;
  gap : gap_summary;
}

val snapshot : unit -> snapshot

(** Zero the registry (tests only). *)
val reset : unit -> unit
