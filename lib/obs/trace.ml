(** The process-wide trace: per-task span buffers handed over after
    each join, merged deterministically, exported as Chrome
    [trace_event] JSON (load it in [chrome://tracing] or Perfetto).

    Tracing is off by default; {!set_enabled} is flipped once at
    startup by the CLI when [--trace] is given.  Task buffers arrive
    via {!add_task}, called by the engine {e after} the join in task
    index order — each [run_all] fan-out contributes one contiguous
    block of groups, so the group sequence is a pure function of the
    program's fan-out structure, not of scheduling.  A mutex guards
    the (cold) hand-over path only; span recording itself is lock-free
    (see {!Span}).

    Export maps every task to its own [tid] (one span group per task
    in the viewer, named by a [thread_name] metadata event) and each
    span to a complete ["ph":"X"] event; stage spans nest under their
    task's root span by time containment.  Timestamps are rebased to
    the earliest span so traces start at t=0. *)

type group = { seq : int; task : int; label : string; spans : Span.span array }

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let lock = Mutex.create ()
let groups : group list ref = ref []
let next_seq = ref 0

(** [add_task ~label ~task spans] hands one joined task's spans over to
    the trace.  Group order is arrival order, which the engine makes
    deterministic (task index order within each fan-out). *)
let add_task ~label ~task (spans : Span.span array) =
  if Array.length spans > 0 then begin
    Mutex.lock lock;
    let seq = !next_seq in
    next_seq := seq + 1;
    groups := { seq; task; label; spans } :: !groups;
    Mutex.unlock lock
  end

let clear () =
  Mutex.lock lock;
  groups := [];
  next_seq := 0;
  Mutex.unlock lock

(** All groups, in arrival order. *)
let all_groups () =
  Mutex.lock lock;
  let gs = List.rev !groups in
  Mutex.unlock lock;
  gs

(* ---------------- Chrome trace_event export ---------------- *)

let group_name g =
  if g.label = "" then Printf.sprintf "task%d" g.task
  else Printf.sprintf "task%d:%s" g.task g.label

(** The trace as a Chrome [trace_event] JSON document. *)
let to_chrome () : Json.t =
  let gs = all_groups () in
  let t0 =
    List.fold_left
      (fun acc g ->
        Array.fold_left (fun acc s -> Int64.min acc s.Span.start_ns) acc g.spans)
      Int64.max_int gs
  in
  let t0 = if t0 = Int64.max_int then 0L else t0 in
  let events =
    List.concat_map
      (fun g ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 0);
            ("tid", Json.Int g.seq);
            ("args", Json.Obj [ ("name", Json.String (group_name g)) ]);
          ]
        :: (Array.to_list g.spans
           |> List.map (fun (s : Span.span) ->
                  Json.Obj
                    [
                      ("name", Json.String s.Span.name);
                      ("cat", Json.String "task");
                      ("ph", Json.String "X");
                      ("ts", Json.Float (Mono.ns_to_us (Int64.sub s.Span.start_ns t0)));
                      ("dur", Json.Float (Mono.ns_to_us (Span.duration_ns s)));
                      ("pid", Json.Int 0);
                      ("tid", Json.Int g.seq);
                      ( "args",
                        Json.Obj
                          [
                            ("task", Json.Int s.Span.task);
                            ("span", Json.Int s.Span.id);
                            ("parent", Json.Int s.Span.parent);
                          ] );
                    ])))
      gs
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.String "ms");
      ("traceEvents", Json.List events);
    ]

(** [write_chrome path] exports the current trace to [path]. *)
let write_chrome path = Json.write_file path (to_chrome ())
