(** The observability clock: nanoseconds on a single monotonically
    interpreted timeline.

    The repository deliberately has no external clock dependency, so
    this is [Unix.gettimeofday] rescaled to integer nanoseconds — on the
    Linux targets we care about that is a vDSO read with microsecond
    resolution, cheap enough to call twice per span.  All obs consumers
    only ever subtract two readings taken inside one process run, so
    wall-clock steps (NTP slew) are the only deviation from a true
    monotonic source; nothing downstream depends on absolute values. *)

let now_ns () : int64 = Int64.of_float (Unix.gettimeofday () *. 1e9)

(** Nanoseconds → microseconds (the Chrome [trace_event] unit), as a
    float with sub-microsecond precision preserved. *)
let ns_to_us (ns : int64) : float = Int64.to_float ns /. 1e3
