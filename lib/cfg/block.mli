(** Basic blocks and their terminators.

    A basic block is a straight-line run of instructions ended by a
    single control-transfer decision.  For branch alignment only the
    {e shape} matters: how many instructions the block holds (for the
    I-cache model) and how control leaves it. *)

(** Identifier of a basic block inside one procedure.  Labels are dense:
    a procedure with [n] blocks uses labels [0 .. n-1]. *)
type label = int

(** How control leaves a basic block. *)
type terminator =
  | Exit  (** return from the procedure *)
  | Goto of label
      (** exactly one CFG successor; realized as a fall-through or an
          unconditional jump depending on the layout *)
  | Branch of { t : label; f : label }
      (** two-way conditional with taken arm [t] and fall arm [f];
          always normalized so [t <> f] *)
  | Multiway of label array
      (** indirect (register) branch, e.g. a jump table; its pipeline
          cost does not depend on the layout *)

type t = {
  id : label;  (** this block's label *)
  size : int;  (** number of non-CTI instructions in the block *)
  term : terminator;
}

(** [make ~id ~size term] builds a block, normalizing degenerate
    terminators (equal-armed conditionals become [Goto], empty or
    singleton [Multiway] become [Exit]/[Goto]).
    @raise Invalid_argument if [size < 0]. *)
val make : id:label -> size:int -> terminator -> t

(** CFG successors of a terminator, taken arm first; duplicates preserved
    for [Multiway]. *)
val successors_of_term : terminator -> label list

(** CFG successors of a block (see {!successors_of_term}). *)
val successors : t -> label list

(** Distinct CFG successors, sorted increasingly. *)
val distinct_successors : t -> label list

(** [has_successor b l] is true iff [l] is a CFG successor of [b]. *)
val has_successor : t -> label -> bool

(** True iff the block ends in an instruction that can redirect fetch in
    at least one layout (everything except [Exit]). *)
val is_cti : t -> bool

(** True iff the block ends in a two-way conditional branch. *)
val is_conditional : t -> bool

(** True iff the block ends in an indirect branch. *)
val is_multiway : t -> bool

val pp_term : Format.formatter -> terminator -> unit
val pp : Format.formatter -> t -> unit
val equal_term : terminator -> terminator -> bool

(** Structural equality on blocks. *)
val equal : t -> t -> bool
