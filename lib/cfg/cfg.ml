(** Per-procedure control-flow graphs.

    A CFG is an array of {!Block.t} indexed by label, plus a distinguished
    entry block.  This is the {e shape} consumed by the alignment
    algorithms; the executable IR of the mini-language (see [Ba_minic.Ir])
    projects onto it. *)

type t = {
  name : string;  (** procedure name, for reporting *)
  entry : Block.label;  (** label of the entry block *)
  blocks : Block.t array;  (** blocks indexed by label *)
}

(** Number of basic blocks. *)
let n_blocks g = Array.length g.blocks

(** [block g l] is the block labelled [l].
    @raise Invalid_argument if [l] is out of range. *)
let block g l =
  if l < 0 || l >= n_blocks g then
    invalid_arg (Printf.sprintf "Cfg.block: label %d out of range in %s" l g.name);
  g.blocks.(l)

(** CFG successors of block [l]. *)
let successors g l = Block.successors (block g l)

(** [check ~strict g] is the invariant checker shared by {!make} and
    {!validate}: non-empty, entry in range, dense ids in order,
    non-negative sizes, successors in range, and terminators consistent
    with the successor sets {!Block.successors_of_term} derives (a
    conditional must keep two distinct arms, an indirect branch at least
    two targets — {!Block.make} normalizes the degenerate forms away, so
    finding one means the block was forged).  With [strict] also requires
    every block to be reachable from the entry. *)
let check ~strict g =
  let n = Array.length g.blocks in
  let bad = ref None in
  let fail m = if !bad = None then bad := Some m in
  if n = 0 then fail "empty CFG";
  if !bad = None && (g.entry < 0 || g.entry >= n) then
    fail (Printf.sprintf "entry %d out of range" g.entry);
  Array.iteri
    (fun i b ->
      if b.Block.id <> i then
        fail (Printf.sprintf "block %d has id %d" i b.Block.id);
      if b.Block.size < 0 then
        fail (Printf.sprintf "block %d has negative size %d" i b.Block.size);
      (match b.Block.term with
      | Block.Branch { t; f } when t = f ->
          fail (Printf.sprintf "block %d: conditional with equal arms" i)
      | Block.Multiway ts when Array.length ts < 2 ->
          fail (Printf.sprintf "block %d: indirect branch with <2 targets" i)
      | _ -> ());
      List.iter
        (fun s ->
          if s < 0 || s >= n then
            fail (Printf.sprintf "block %d has successor %d out of range" i s))
        (Block.successors b))
    g.blocks;
  (if strict && !bad = None then
     let seen = Array.make n false in
     let rec go l =
       if not seen.(l) then begin
         seen.(l) <- true;
         List.iter go (Block.successors g.blocks.(l))
       end
     in
     go g.entry;
     Array.iteri
       (fun l r ->
         if not r then fail (Printf.sprintf "block %d unreachable from entry" l))
       seen);
  match !bad with Some m -> Error m | None -> Ok ()

(** [make ~name ~entry blocks] builds and validates a CFG.
    @raise Invalid_argument if validation fails (see {!validate}). *)
let make ~name ~entry blocks =
  let g = { name; entry; blocks } in
  match check ~strict:false g with
  | Ok () -> g
  | Error m -> invalid_arg (Printf.sprintf "Cfg.make(%s): %s" name m)

(** [validate ?strict g] re-checks the structural invariants of [g]:
    non-empty, entry in range, dense ids, non-negative sizes, successors
    in range, terminator/successor consistency.  [strict] additionally
    requires every block to be reachable from the entry (unreachable
    blocks are legal — front ends produce them — so the default is
    lenient). *)
let validate ?(strict = false) g = check ~strict g

(** [reachable g] marks the blocks reachable from the entry. *)
let reachable g =
  let seen = Array.make (n_blocks g) false in
  let rec go l =
    if not seen.(l) then begin
      seen.(l) <- true;
      List.iter go (successors g l)
    end
  in
  go g.entry;
  seen

(** [n_reachable g] counts blocks reachable from the entry. *)
let n_reachable g =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 (reachable g)

(** Total number of (static) CFG edges, counting duplicate multiway
    targets once per distinct destination. *)
let n_edges g =
  Array.fold_left
    (fun acc b -> acc + List.length (Block.distinct_successors b))
    0 g.blocks

(** All distinct CFG edges [(src, dst)]. *)
let edges g =
  Array.to_list g.blocks
  |> List.concat_map (fun b ->
         List.map (fun s -> (b.Block.id, s)) (Block.distinct_successors b))

(* ------------------------------------------------------------------ *)
(* Canonical structural hashing.                                       *)

(* FNV-1a, 64-bit.  OCaml's native [int] is 63-bit, so the hash lives
   in an [int64] to keep all 64 bits portable across word sizes. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv1a_int h v =
  (* feed the int as 8 little-endian bytes so every label/size bit
     lands in the digest *)
  let rec go h i acc =
    if i = 8 then h
    else go (fnv1a_byte h (Int64.to_int (Int64.logand acc 0xffL))) (i + 1)
           (Int64.shift_right_logical acc 8)
  in
  go h 0 (Int64.of_int v)

(** [structural_hash g] digests the structure of [g] — entry label,
    and per block (in label order) its size, terminator class and
    successor labels — into a canonical 64-bit value.

    Canonical means {e order-independent over successor lists}: an
    indirect branch hashes its distinct targets in sorted order, so two
    CFGs that differ only in the serialization order (or duplication)
    of multiway targets hash identically.  Conditional arms keep their
    taken/fall roles (swapping them is a different program).  The
    procedure name is {e not} hashed: the hash identifies structure,
    so it is a stable cache / CI-diff key across renames.  Collisions
    are possible (it is a 64-bit digest, not a certificate) — users
    that need certainty must re-verify, as the serve-layer cache does
    by re-certifying every cached layout. *)
let structural_hash g =
  let h = ref (fnv1a_int (fnv1a_int fnv_offset (n_blocks g)) g.entry) in
  Array.iter
    (fun b ->
      h := fnv1a_int !h b.Block.size;
      match b.Block.term with
      | Block.Exit -> h := fnv1a_int !h 0
      | Block.Goto l ->
          h := fnv1a_int (fnv1a_int !h 1) l
      | Block.Branch { t; f } ->
          h := fnv1a_int (fnv1a_int (fnv1a_int !h 2) t) f
      | Block.Multiway _ ->
          h := fnv1a_int !h 3;
          (* sorted distinct targets: canonical over list order *)
          List.iter
            (fun l -> h := fnv1a_int !h l)
            (Block.distinct_successors b))
    g.blocks;
  !h

(** Static count of blocks ending in a control-transfer instruction. *)
let n_branch_sites g =
  Array.fold_left (fun acc b -> if Block.is_cti b then acc + 1 else acc) 0 g.blocks

(** Total instruction count over all blocks (terminators excluded). *)
let total_size g = Array.fold_left (fun acc b -> acc + b.Block.size) 0 g.blocks

(** Fold over blocks in label order. *)
let fold f init g = Array.fold_left f init g.blocks

(** Iterate over blocks in label order. *)
let iter f g = Array.iter f g.blocks

let pp ppf g =
  Fmt.pf ppf "@[<v>cfg %s (entry %d)@,%a@]" g.name g.entry
    Fmt.(array ~sep:cut Block.pp)
    g.blocks
