(** Per-procedure control-flow graphs.

    A CFG is an array of {!Block.t} indexed by label, plus a distinguished
    entry block.  This is the {e shape} consumed by the alignment
    algorithms; the executable IR of the mini-language (see [Ba_minic.Ir])
    projects onto it. *)

type t = {
  name : string;  (** procedure name, for reporting *)
  entry : Block.label;  (** label of the entry block *)
  blocks : Block.t array;  (** blocks indexed by label *)
}

(** Number of basic blocks. *)
let n_blocks g = Array.length g.blocks

(** [block g l] is the block labelled [l].
    @raise Invalid_argument if [l] is out of range. *)
let block g l =
  if l < 0 || l >= n_blocks g then
    invalid_arg (Printf.sprintf "Cfg.block: label %d out of range in %s" l g.name);
  g.blocks.(l)

(** CFG successors of block [l]. *)
let successors g l = Block.successors (block g l)

(** [make ~name ~entry blocks] builds and validates a CFG.
    @raise Invalid_argument if validation fails (see {!validate}). *)
let make ~name ~entry blocks =
  let g = { name; entry; blocks } in
  match
    (let ( let* ) r f = Result.bind r f in
     let* () =
       if Array.length blocks = 0 then Error "empty CFG" else Ok ()
     in
     let* () =
       if entry < 0 || entry >= Array.length blocks then
         Error "entry out of range"
       else Ok ()
     in
     let bad = ref None in
     Array.iteri
       (fun i b ->
         if b.Block.id <> i then bad := Some (Printf.sprintf "block %d has id %d" i b.Block.id);
         List.iter
           (fun s ->
             if s < 0 || s >= Array.length blocks then
               bad := Some (Printf.sprintf "block %d has successor %d out of range" i s))
           (Block.successors b))
       blocks;
     match !bad with Some m -> Error m | None -> Ok ())
  with
  | Ok () -> g
  | Error m -> invalid_arg (Printf.sprintf "Cfg.make(%s): %s" name m)

(** [validate g] re-checks the structural invariants of [g]:
    non-empty, entry in range, dense ids, successors in range. *)
let validate g =
  match make ~name:g.name ~entry:g.entry g.blocks with
  | (_ : t) -> Ok ()
  | exception Invalid_argument m -> Error m

(** [reachable g] marks the blocks reachable from the entry. *)
let reachable g =
  let seen = Array.make (n_blocks g) false in
  let rec go l =
    if not seen.(l) then begin
      seen.(l) <- true;
      List.iter go (successors g l)
    end
  in
  go g.entry;
  seen

(** [n_reachable g] counts blocks reachable from the entry. *)
let n_reachable g =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 (reachable g)

(** Total number of (static) CFG edges, counting duplicate multiway
    targets once per distinct destination. *)
let n_edges g =
  Array.fold_left
    (fun acc b -> acc + List.length (Block.distinct_successors b))
    0 g.blocks

(** All distinct CFG edges [(src, dst)]. *)
let edges g =
  Array.to_list g.blocks
  |> List.concat_map (fun b ->
         List.map (fun s -> (b.Block.id, s)) (Block.distinct_successors b))

(** Static count of blocks ending in a control-transfer instruction. *)
let n_branch_sites g =
  Array.fold_left (fun acc b -> if Block.is_cti b then acc + 1 else acc) 0 g.blocks

(** Total instruction count over all blocks (terminators excluded). *)
let total_size g = Array.fold_left (fun acc b -> acc + b.Block.size) 0 g.blocks

(** Fold over blocks in label order. *)
let fold f init g = Array.fold_left f init g.blocks

(** Iterate over blocks in label order. *)
let iter f g = Array.iter f g.blocks

let pp ppf g =
  Fmt.pf ppf "@[<v>cfg %s (entry %d)@,%a@]" g.name g.entry
    Fmt.(array ~sep:cut Block.pp)
    g.blocks
