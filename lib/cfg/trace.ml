(** Execution-trace events.

    The mini-language interpreter (and any other front end) reports
    execution as a stream of events; the profiler and the pipeline
    simulator consume the same stream.  Events are scoped per procedure
    {e invocation}: a [Block] event always refers to the procedure of the
    innermost open [Enter].  Intraprocedural control transfers are the
    consecutive [Block] events within one invocation; callee blocks in
    between do not break the caller's adjacency (returning into the middle
    of a block is not a layout transfer). *)

type event =
  | Enter of int  (** procedure [fid] is invoked *)
  | Block of int  (** block [bid] of the innermost open procedure executes *)
  | Leave  (** the innermost open procedure returns *)

(** A consumer of trace events. *)
type sink = event -> unit

(** [tee a b] duplicates a stream into two sinks. *)
let tee (a : sink) (b : sink) : sink =
 fun e ->
  a e;
  b e

(** The null sink. *)
let null : sink = fun _ -> ()

(** [count_blocks ()] is a sink counting [Block] events plus an accessor. *)
let count_blocks () =
  let n = ref 0 in
  let sink = function Block _ -> incr n | _ -> () in
  (sink, fun () -> !n)

(** [invocation_walker ~on_block ()] builds a sink that maintains the
    invocation stack and reports every block execution together with the
    previous block of the {e same invocation} ([prev = None] for the first
    block after [Enter]).  This is the canonical way to recover
    intraprocedural control transfers from a trace; the profiler, the
    pipeline simulator and the cycle model are all built on it.

    @raise Invalid_argument on malformed streams ([Block]/[Leave] with no
    open invocation). *)
let invocation_walker ?(on_enter = fun _ -> ()) ?(on_leave = fun _ -> ())
    ?(on_call = fun ~caller:_ ~callee:_ -> ())
    ~(on_block : fid:int -> bid:int -> prev:int option -> unit) () : sink =
  let stack = ref [] in
  fun e ->
    match e with
    | Enter f ->
        let caller = match !stack with [] -> None | (g, _) :: _ -> Some g in
        on_call ~caller ~callee:f;
        stack := (f, ref None) :: !stack;
        on_enter f
    | Block b -> (
        match !stack with
        | [] -> invalid_arg "Trace: Block event outside any procedure"
        | (f, last) :: _ ->
            on_block ~fid:f ~bid:b ~prev:!last;
            last := Some b)
    | Leave -> (
        match !stack with
        | [] -> invalid_arg "Trace: Leave event without matching Enter"
        | (f, _) :: rest ->
            stack := rest;
            on_leave f)

let pp ppf = function
  | Enter f -> Fmt.pf ppf "enter %d" f
  | Block b -> Fmt.pf ppf "block %d" b
  | Leave -> Fmt.string ppf "leave"
