(** Per-procedure control-flow graphs: an array of {!Block.t} indexed by
    label, plus a distinguished entry block. *)

type t = {
  name : string;  (** procedure name, for reporting *)
  entry : Block.label;
  blocks : Block.t array;  (** indexed by label *)
}

(** Number of basic blocks. *)
val n_blocks : t -> int

(** [block g l] is the block labelled [l].
    @raise Invalid_argument if [l] is out of range. *)
val block : t -> Block.label -> Block.t

(** CFG successors of block [l]. *)
val successors : t -> Block.label -> Block.label list

(** [make ~name ~entry blocks] builds and validates a CFG: non-empty,
    entry in range, ids dense and in order, successors in range.
    @raise Invalid_argument if validation fails. *)
val make : name:string -> entry:Block.label -> Block.t array -> t

(** [validate ?strict g] re-checks the structural invariants of an
    existing CFG: non-empty, entry in range, dense ids, non-negative
    sizes, successors in range, terminator/successor consistency.  With
    [strict] every block must also be reachable from the entry (the
    default is lenient: front ends legally emit unreachable blocks). *)
val validate : ?strict:bool -> t -> (unit, string) result

(** [reachable g].(l) is true iff block [l] is reachable from the entry. *)
val reachable : t -> bool array

(** Number of blocks reachable from the entry. *)
val n_reachable : t -> int

(** Number of distinct static CFG edges. *)
val n_edges : t -> int

(** All distinct CFG edges as [(src, dst)] pairs. *)
val edges : t -> (Block.label * Block.label) list

(** Canonical 64-bit structural digest: entry label plus, per block in
    label order, size, terminator class and successor labels — with
    multiway successor lists hashed as sorted distinct targets, so the
    hash is order-independent over successor lists.  Conditional arms
    keep their taken/fall roles; the procedure name is not hashed.
    Used as the serve-layer layout-cache key and as a cheap CI identity
    anchor; a 64-bit digest can collide, so anything that needs
    certainty must re-verify the layout itself. *)
val structural_hash : t -> int64

(** Static count of blocks ending in a control-transfer instruction. *)
val n_branch_sites : t -> int

(** Total instruction count over all blocks (terminators excluded). *)
val total_size : t -> int

val fold : ('a -> Block.t -> 'a) -> 'a -> t -> 'a
val iter : (Block.t -> unit) -> t -> unit
val pp : Format.formatter -> t -> unit
