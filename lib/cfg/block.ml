(** Basic blocks and their terminators.

    A basic block is a straight-line run of instructions ended by a single
    control-transfer decision.  For branch alignment we only care about the
    {e shape} of a block: how many instructions it holds (for the I-cache
    model) and how control leaves it. *)

(** Identifier of a basic block inside one procedure.  Labels are dense:
    a procedure with [n] blocks uses labels [0 .. n-1]. *)
type label = int

(** How control leaves a basic block.

    - [Exit] — the block returns from the procedure (or ends the program).
    - [Goto l] — exactly one CFG successor.  Depending on the layout this is
      realized either as a fall-through (no instruction at all) or as an
      unconditional jump.
    - [Branch {t; f}] — a two-way conditional branch with {e taken} arm [t]
      and {e fall-through} arm [f].  The two arms are distinct (a degenerate
      conditional with equal arms must be normalized to [Goto] first, see
      {!normalize}).
    - [Multiway targets] — an indirect (register) branch such as a jump
      table; [targets] lists the possible destinations.  An indirect jump
      always redirects the fetch stream, so its pipeline cost does not
      depend on the layout. *)
type terminator =
  | Exit
  | Goto of label
  | Branch of { t : label; f : label }
  | Multiway of label array

type t = {
  id : label;  (** this block's label *)
  size : int;  (** number of non-CTI instructions in the block *)
  term : terminator;  (** how control leaves the block *)
}

(** [make ~id ~size term] builds a block, normalizing degenerate
    terminators: a conditional branch whose arms coincide becomes a [Goto],
    and an empty [Multiway] becomes [Exit].
    @raise Invalid_argument if [size < 0]. *)
let make ~id ~size term =
  if size < 0 then invalid_arg "Block.make: negative size";
  let term =
    match term with
    | Branch { t; f } when t = f -> Goto t
    | Multiway [||] -> Exit
    | Multiway [| l |] -> Goto l
    | t -> t
  in
  { id; size; term }

(** CFG successors of a terminator, in a canonical order (taken arm first
    for conditionals).  Duplicates are preserved for [Multiway]. *)
let successors_of_term = function
  | Exit -> []
  | Goto l -> [ l ]
  | Branch { t; f } -> [ t; f ]
  | Multiway ts -> Array.to_list ts

(** CFG successors of a block (see {!successors_of_term}). *)
let successors b = successors_of_term b.term

(** Distinct CFG successors of a block, sorted increasingly. *)
let distinct_successors b =
  List.sort_uniq compare (successors b)

(** [has_successor b l] is true iff [l] is a CFG successor of [b]. *)
let has_successor b l = List.mem l (successors b)

(** [is_cti b] is true iff the block ends in an instruction that can
    redirect fetch in at least one layout (everything except [Exit];
    a [Goto] is a potential jump even though a good layout deletes it). *)
let is_cti b = match b.term with Exit -> false | _ -> true

(** [is_conditional b] is true iff [b] ends in a two-way branch. *)
let is_conditional b = match b.term with Branch _ -> true | _ -> false

(** [is_multiway b] is true iff [b] ends in an indirect branch. *)
let is_multiway b = match b.term with Multiway _ -> true | _ -> false

let pp_term ppf = function
  | Exit -> Fmt.string ppf "exit"
  | Goto l -> Fmt.pf ppf "goto %d" l
  | Branch { t; f } -> Fmt.pf ppf "branch t:%d f:%d" t f
  | Multiway ts ->
      Fmt.pf ppf "multiway [%a]"
        Fmt.(array ~sep:(any " ") int)
        ts

(** Pretty-printer for blocks, e.g. ["b3(size 5): branch t:4 f:7"]. *)
let pp ppf b = Fmt.pf ppf "b%d(size %d): %a" b.id b.size pp_term b.term

let equal_term a b =
  match (a, b) with
  | Exit, Exit -> true
  | Goto x, Goto y -> x = y
  | Branch { t; f }, Branch { t = t'; f = f' } -> t = t' && f = f'
  | Multiway x, Multiway y -> x = y
  | _ -> false

(** Structural equality on blocks. *)
let equal a b = a.id = b.id && a.size = b.size && equal_term a.term b.term
