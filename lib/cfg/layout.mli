(** Layouts: linear orders of a procedure's basic blocks, and their
    {e realization} as concrete control transfers (fall-throughs, jumps,
    inverted conditionals, inserted fixup jumps). *)

(** A layout order: [order.(i)] is the label placed at position [i].
    Invariant (checked by {!is_valid}): a permutation of [0..n-1] with
    the entry block at position 0. *)
type order = Block.label array

(** The identity layout: blocks in label order (entry swapped to the
    front if it is not block 0). *)
val identity : Cfg.t -> order

(** [is_valid g o] checks that [o] is a permutation of [g]'s labels with
    the entry first. *)
val is_valid : Cfg.t -> order -> bool

(** [positions o].(l) is the position of block [l] in the layout. *)
val positions : order -> int array

(** [layout_successor o].(l) is the block placed immediately after [l],
    or [None] for the last block. *)
val layout_successor : order -> Block.label option array

(** Realized terminator of a block in a particular layout. *)
type rterm =
  | R_fall of Block.label  (** no CTI; falls into the layout successor *)
  | R_jump of Block.label  (** unconditional jump *)
  | R_exit
  | R_cond of { taken : Block.label; fall : Block.label; via_fixup : bool }
      (** conditional; when [via_fixup] the fall path runs through an
          inserted unconditional jump before reaching [fall] *)
  | R_multi of { targets : Block.label array }  (** indirect branch *)

(** Items of the final linearized procedure body, in memory order. *)
type item =
  | I_block of Block.label
  | I_fixup of { src : Block.label; target : Block.label }
      (** the one-instruction fixup jump inserted after block [src] *)

(** A fully realized layout. *)
type realized = {
  order : order;
  terms : rterm array;  (** realized terminator, indexed by label *)
  items : item array;  (** memory order including fixup blocks *)
}

(** Destinations reachable from a realized terminator, sorted distinct —
    must equal the block's distinct CFG successors. *)
val rterm_destinations : rterm -> Block.label list

(** Instructions a realized terminator occupies (0 for fall-throughs, 1
    for jumps/conditionals/returns, 2 for indirect branches). *)
val rterm_instrs : rterm -> int

(** [build_items order terms] lays out the blocks, inserting fixup items
    where realized conditionals require them. *)
val build_items : order -> rterm array -> item array

(** [check_semantics g r] verifies the realized layout transfers control
    to exactly the same destinations as the CFG. *)
val check_semantics : Cfg.t -> realized -> (unit, string) result

val pp_rterm : Format.formatter -> rterm -> unit
