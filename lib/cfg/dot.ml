(** Graphviz export of CFGs, optionally annotated with edge
    frequencies, for debugging and documentation. *)

(** [emit ?freq ppf g] writes [g] in DOT syntax.  When [freq] is given,
    [freq src dst] labels the edge with its execution count. *)
let emit ?freq ppf (g : Cfg.t) =
  Fmt.pf ppf "digraph %S {@." g.Cfg.name;
  Fmt.pf ppf "  node [shape=box fontname=monospace];@.";
  Cfg.iter
    (fun b ->
      let open Block in
      let shape_attr =
        if b.id = g.Cfg.entry then " style=bold"
        else match b.term with Exit -> " style=dashed" | _ -> ""
      in
      Fmt.pf ppf "  n%d [label=\"b%d\\nsize %d\"%s];@." b.id b.id b.size
        shape_attr;
      let edge ?(style = "") dst =
        let lbl =
          match freq with
          | None -> ""
          | Some f -> Printf.sprintf " label=\"%d\"" (f b.id dst)
        in
        Fmt.pf ppf "  n%d -> n%d [%s%s];@." b.id dst style lbl
      in
      match b.term with
      | Exit -> ()
      | Goto l -> edge l
      | Branch { t; f } ->
          edge ~style:"color=red" t;
          edge ~style:"color=blue" f
      | Multiway ts -> Array.iter (edge ~style:"color=gray") ts)
    g;
  Fmt.pf ppf "}@."

(** [to_string ?freq g] renders {!emit} to a string. *)
let to_string ?freq g = Fmt.str "%a" (emit ?freq) g
