(** Graphviz export of CFGs, optionally annotated with edge
    frequencies and caller-supplied attributes (the lint layer uses the
    attribute hooks to color offending blocks/edges and attach rule ids
    as tooltips), for debugging and documentation. *)

(** [emit ?freq ?block_attr ?edge_attr ppf g] writes [g] in DOT syntax.
    When [freq] is given, [freq src dst] labels the edge with its
    execution count.  [block_attr l] (resp. [edge_attr src dst]) may
    return extra DOT attributes appended verbatim inside the node's
    (edge's) bracket list — e.g. ["style=filled fillcolor=mistyrose"]. *)
let emit ?freq ?block_attr ?edge_attr ppf (g : Cfg.t) =
  let extra f =
    match f with
    | None -> ""
    | Some s when s = "" -> ""
    | Some s -> " " ^ s
  in
  Fmt.pf ppf "digraph %S {@." g.Cfg.name;
  Fmt.pf ppf "  node [shape=box fontname=monospace];@.";
  Cfg.iter
    (fun b ->
      let open Block in
      let shape_attr =
        if b.id = g.Cfg.entry then " style=bold"
        else match b.term with Exit -> " style=dashed" | _ -> ""
      in
      Fmt.pf ppf "  n%d [label=\"b%d\\nsize %d\"%s%s];@." b.id b.id b.size
        shape_attr
        (extra (Option.bind block_attr (fun f -> f b.id)));
      let edge ?(style = "") dst =
        let lbl =
          match freq with
          | None -> ""
          | Some f -> Printf.sprintf " label=\"%d\"" (f b.id dst)
        in
        Fmt.pf ppf "  n%d -> n%d [%s%s%s];@." b.id dst style lbl
          (extra (Option.bind edge_attr (fun f -> f b.id dst)))
      in
      match b.term with
      | Exit -> ()
      | Goto l -> edge l
      | Branch { t; f } ->
          edge ~style:"color=red" t;
          edge ~style:"color=blue" f
      | Multiway ts -> Array.iter (edge ~style:"color=gray") ts)
    g;
  Fmt.pf ppf "}@."

(** [to_string ?freq ?block_attr ?edge_attr g] renders {!emit} to a
    string. *)
let to_string ?freq ?block_attr ?edge_attr g =
  Fmt.str "%a" (emit ?freq ?block_attr ?edge_attr) g
