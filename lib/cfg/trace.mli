(** Execution-trace events, shared by the interpreter (producer) and the
    profiler / machine simulators (consumers).

    Events are scoped per procedure {e invocation}: a [Block] event
    refers to the procedure of the innermost open [Enter], and
    intraprocedural control transfers are consecutive [Block] events
    within one invocation (callee blocks in between do not break the
    caller's adjacency). *)

type event =
  | Enter of int  (** procedure [fid] is invoked *)
  | Block of int  (** block [bid] of the innermost open procedure runs *)
  | Leave  (** the innermost open procedure returns *)

(** A consumer of trace events. *)
type sink = event -> unit

(** [tee a b] duplicates a stream into two sinks. *)
val tee : sink -> sink -> sink

(** The null sink. *)
val null : sink

(** [count_blocks ()] is a sink counting [Block] events, plus an
    accessor for the count. *)
val count_blocks : unit -> sink * (unit -> int)

(** [invocation_walker ~on_block ()] builds a sink that maintains the
    invocation stack and reports every block execution with the previous
    block of the same invocation ([prev = None] right after [Enter]).
    [on_call] fires on every [Enter] with the calling procedure (or
    [None] for the outermost invocation).
    @raise Invalid_argument on malformed streams. *)
val invocation_walker :
  ?on_enter:(int -> unit) ->
  ?on_leave:(int -> unit) ->
  ?on_call:(caller:int option -> callee:int -> unit) ->
  on_block:(fid:int -> bid:int -> prev:int option -> unit) ->
  unit ->
  sink

val pp : Format.formatter -> event -> unit
