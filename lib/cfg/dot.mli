(** Graphviz export of CFGs, optionally annotated with edge
    frequencies and caller-supplied node/edge attributes. *)

(** [emit ?freq ?block_attr ?edge_attr ppf g] writes [g] in DOT syntax;
    [freq src dst] labels each edge with its execution count.
    [block_attr l] (resp. [edge_attr src dst]) may return extra DOT
    attributes appended verbatim inside the node's (edge's) bracket
    list — the lint layer uses this to color offending blocks/edges and
    attach rule ids as tooltips. *)
val emit :
  ?freq:(Block.label -> Block.label -> int) ->
  ?block_attr:(Block.label -> string option) ->
  ?edge_attr:(Block.label -> Block.label -> string option) ->
  Format.formatter ->
  Cfg.t ->
  unit

(** [to_string ?freq ?block_attr ?edge_attr g] renders {!emit} to a
    string. *)
val to_string :
  ?freq:(Block.label -> Block.label -> int) ->
  ?block_attr:(Block.label -> string option) ->
  ?edge_attr:(Block.label -> Block.label -> string option) ->
  Cfg.t ->
  string
