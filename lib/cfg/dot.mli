(** Graphviz export of CFGs, optionally annotated with edge
    frequencies. *)

(** [emit ?freq ppf g] writes [g] in DOT syntax; [freq src dst] labels
    each edge with its execution count. *)
val emit :
  ?freq:(Block.label -> Block.label -> int) -> Format.formatter -> Cfg.t -> unit

(** [to_string ?freq g] renders {!emit} to a string. *)
val to_string : ?freq:(Block.label -> Block.label -> int) -> Cfg.t -> string
