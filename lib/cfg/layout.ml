(** Layouts: linear orders of a procedure's basic blocks, and their
    {e realization} as concrete control transfers.

    A layout is a permutation of the block labels with the entry block
    first.  Realizing a layout decides, for every block, how its
    terminator is implemented given its layout successor: fall-throughs
    are free, single-successor blocks that do not fall through get an
    unconditional jump, conditional branches may be inverted, and when
    neither arm of a conditional is the layout successor an extra
    {e fixup} unconditional jump is inserted after the block (the paper's
    "fixup basic block", Section 2.2 and Table 3). *)

(** A layout order: [order.(i)] is the label placed at position [i].
    Invariant (checked by {!is_valid}): a permutation of [0..n-1] with the
    entry block at position 0. *)
type order = Block.label array

(** The identity layout: blocks in label order.  Requires the CFG entry to
    be block 0 (which our front end guarantees); otherwise the entry is
    swapped to the front. *)
let identity (g : Cfg.t) : order =
  let n = Cfg.n_blocks g in
  let o = Array.init n (fun i -> i) in
  if g.entry <> 0 then begin
    o.(g.entry) <- 0;
    o.(0) <- g.entry
  end;
  o

(** [is_valid g o] checks that [o] is a permutation of [g]'s labels with
    the entry first. *)
let is_valid (g : Cfg.t) (o : order) =
  let n = Cfg.n_blocks g in
  Array.length o = n
  && o.(0) = g.entry
  &&
  let seen = Array.make n false in
  Array.for_all
    (fun l ->
      if l < 0 || l >= n || seen.(l) then false
      else begin
        seen.(l) <- true;
        true
      end)
    o

(** [positions o] inverts a layout: [positions o].(l) is the position of
    block [l]. *)
let positions (o : order) =
  let pos = Array.make (Array.length o) (-1) in
  Array.iteri (fun i l -> pos.(l) <- i) o;
  pos

(** [layout_successor o].(l) is [Some l'] when block [l'] is placed
    immediately after block [l], or [None] for the last block. *)
let layout_successor (o : order) : Block.label option array =
  let n = Array.length o in
  let succ = Array.make n None in
  for i = 0 to n - 2 do
    succ.(o.(i)) <- Some o.(i + 1)
  done;
  succ

(** Realized terminator of a block in a particular layout.

    - [R_fall l] — no CTI at all; execution falls into [l], the layout
      successor.
    - [R_jump l] — an unconditional jump to [l].
    - [R_exit] — procedure return.
    - [R_cond {taken; fall; via_fixup}] — a conditional branch whose taken
      target is [taken] and whose fall-through arm reaches [fall].  When
      [via_fixup] is true, the fall-through path first executes an inserted
      unconditional jump (the fixup block) before reaching [fall]; this
      happens when neither CFG arm is the layout successor.
    - [R_multi] — an indirect branch; realization is layout-independent. *)
type rterm =
  | R_fall of Block.label
  | R_jump of Block.label
  | R_exit
  | R_cond of { taken : Block.label; fall : Block.label; via_fixup : bool }
  | R_multi of { targets : Block.label array }

(** Items of the final linearized procedure body, in memory order.
    [I_fixup {src; target}] is the one-instruction unconditional jump
    inserted after conditional block [src] to reach its fall arm
    [target]. *)
type item =
  | I_block of Block.label
  | I_fixup of { src : Block.label; target : Block.label }

(** A fully realized layout. *)
type realized = {
  order : order;  (** the block order realized *)
  terms : rterm array;  (** realized terminator, indexed by label *)
  items : item array;  (** memory order including fixup blocks *)
}

(** Destinations reachable from a realized terminator (for semantics
    checks): must equal the distinct CFG successors of the block. *)
let rterm_destinations = function
  | R_fall l | R_jump l -> [ l ]
  | R_exit -> []
  | R_cond { taken; fall; _ } -> List.sort_uniq compare [ taken; fall ]
  | R_multi { targets } -> List.sort_uniq compare (Array.to_list targets)

(** Number of instructions a realized terminator occupies: fall-throughs
    cost nothing, jumps/conditionals/returns one instruction, indirect
    branches two (table load + jump). *)
let rterm_instrs = function
  | R_fall _ -> 0
  | R_jump _ -> 1
  | R_exit -> 1
  | R_cond _ -> 1
  | R_multi _ -> 2

(** [build_items order terms] lays the blocks out in [order], inserting a
    fixup item after every block whose realized conditional requires
    one. *)
let build_items (o : order) (terms : rterm array) : item array =
  let out = ref [] in
  Array.iter
    (fun l ->
      out := I_block l :: !out;
      match terms.(l) with
      | R_cond { fall; via_fixup = true; _ } ->
          out := I_fixup { src = l; target = fall } :: !out
      | _ -> ())
    o;
  Array.of_list (List.rev !out)

(** [check_semantics g r] verifies that the realized layout transfers
    control to exactly the same destinations as the CFG: for every block,
    the realized terminator's destination set equals the block's distinct
    CFG successors.  Returns an error message naming the first offending
    block. *)
let check_semantics (g : Cfg.t) (r : realized) =
  if not (is_valid g r.order) then Error "invalid layout order"
  else
    let bad = ref None in
    Cfg.iter
      (fun b ->
        let want = Block.distinct_successors b in
        let got = rterm_destinations r.terms.(b.Block.id) in
        if want <> got && !bad = None then
          bad :=
            Some
              (Printf.sprintf "block %d: realized destinations differ from CFG"
                 b.Block.id))
      g;
    match !bad with None -> Ok () | Some m -> Error m

let pp_rterm ppf = function
  | R_fall l -> Fmt.pf ppf "fall %d" l
  | R_jump l -> Fmt.pf ppf "jump %d" l
  | R_exit -> Fmt.string ppf "exit"
  | R_cond { taken; fall; via_fixup } ->
      Fmt.pf ppf "cond taken:%d fall:%d%s" taken fall
        (if via_fixup then " (fixup)" else "")
  | R_multi { targets } ->
      Fmt.pf ppf "multi [%a]" Fmt.(array ~sep:(any " ") int) targets
