(** Hand-written lexer for minic. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type t = { toks : (token * int) array  (** token with its line number *) }

exception Error of string

(** Reserved words of the language. *)
val keywords : string list

(** Tokenize a source string ([//] comments stripped).
    @raise Error on an unexpected character. *)
val tokenize : string -> t
