(** Lowering from the minic AST to the executable CFG IR.

    The interesting part for branch alignment is condition lowering:
    [&&], [||] and [!] in condition position are lowered by
    short-circuiting into separate blocks (extra conditional branches,
    just like a real compiler), while in value position they evaluate
    strictly to 0/1.  [switch] becomes a jump-table terminator.
    Statements after a terminator ([return]/[break]/[continue]) are
    unreachable and dropped. *)

exception Error of string

(* growable function builder *)
type builder = {
  mutable rev_instrs : Ir.instr list array;  (** per block, reversed *)
  mutable terms : Ir.term option array;
  mutable n_blocks : int;
}

let new_block (b : builder) =
  if b.n_blocks = Array.length b.terms then begin
    let cap = max 8 (2 * b.n_blocks) in
    let ri = Array.make cap [] and ts = Array.make cap None in
    Array.blit b.rev_instrs 0 ri 0 b.n_blocks;
    Array.blit b.terms 0 ts 0 b.n_blocks;
    b.rev_instrs <- ri;
    b.terms <- ts
  end;
  let id = b.n_blocks in
  b.n_blocks <- id + 1;
  id

let emit b blk i = b.rev_instrs.(blk) <- i :: b.rev_instrs.(blk)

let set_term b blk t =
  match b.terms.(blk) with
  | Some _ -> invalid_arg "Lower: block terminated twice"
  | None -> b.terms.(blk) <- Some t

type env = {
  slots : (string, int) Hashtbl.t;
  mutable n_slots : int;
  fids : (string, int) Hashtbl.t;
}

let slot env x =
  match Hashtbl.find_opt env.slots x with
  | Some s -> s
  | None ->
      let s = env.n_slots in
      env.n_slots <- s + 1;
      Hashtbl.replace env.slots x s;
      s

let rec lower_expr env (e : Ast.expr) : Ir.expr =
  match e with
  | Ast.Int n -> Ir.Const n
  | Ast.Var x -> Ir.Local (slot env x)
  | Ast.Index (x, i) -> Ir.Load (slot env x, lower_expr env i)
  | Ast.Unary (op, a) -> Ir.Unary (op, lower_expr env a)
  | Ast.Binary (op, a, b) -> Ir.Binary (op, lower_expr env a, lower_expr env b)
  | Ast.Call ("read", []) -> Ir.Read
  | Ast.Call ("array", [ n ]) -> Ir.ArrayNew (lower_expr env n)
  | Ast.Call ("len", [ Ast.Var x ]) -> Ir.ArrayLen (slot env x)
  | Ast.Call ("len", _) -> raise (Error "len() expects a variable")
  | Ast.Call (f, args) -> (
      match Hashtbl.find_opt env.fids f with
      | Some fid ->
          Ir.Call (fid, Array.of_list (List.map (lower_expr env) args))
      | None -> raise (Error ("unknown function " ^ f)))

(** Short-circuit lowering of conditions: jump to [tblk] when true,
    [fblk] when false.  [cur] is the open block evaluating the
    condition. *)
let rec lower_cond env b cur (e : Ast.expr) ~tblk ~fblk =
  match e with
  | Ast.Binary (Ast.And, l, r) ->
      let mid = new_block b in
      lower_cond env b cur l ~tblk:mid ~fblk;
      lower_cond env b mid r ~tblk ~fblk
  | Ast.Binary (Ast.Or, l, r) ->
      let mid = new_block b in
      lower_cond env b cur l ~tblk ~fblk:mid;
      lower_cond env b mid r ~tblk ~fblk
  | Ast.Unary (Ast.Not, a) -> lower_cond env b cur a ~tblk:fblk ~fblk:tblk
  | _ -> set_term b cur (Ir.If (lower_expr env e, tblk, fblk))

(** Lower a statement into open block [cur]; result is the block left
    open afterwards, or [None] if control cannot fall through. *)
let rec lower_stmt env b cur ~brk ~cont (s : Ast.stmt) : int option =
  match s with
  | Ast.Decl (x, e) | Ast.Assign (x, e) ->
      emit b cur (Ir.Set (slot env x, lower_expr env e));
      Some cur
  | Ast.Store (x, i, e) ->
      emit b cur (Ir.Store (slot env x, lower_expr env i, lower_expr env e));
      Some cur
  | Ast.Print e ->
      emit b cur (Ir.Print (lower_expr env e));
      Some cur
  | Ast.Expr e ->
      emit b cur (Ir.Eval (lower_expr env e));
      Some cur
  | Ast.Return e ->
      set_term b cur (Ir.Ret (Option.map (lower_expr env) e));
      None
  | Ast.Break -> (
      match brk with
      | Some target ->
          set_term b cur (Ir.Goto target);
          None
      | None -> raise (Error "break outside loop"))
  | Ast.Continue -> (
      match cont with
      | Some target ->
          set_term b cur (Ir.Goto target);
          None
      | None -> raise (Error "continue outside loop"))
  | Ast.If (c, tb, fb) ->
      let tblk = new_block b and fblk = new_block b and after = new_block b in
      lower_cond env b cur c ~tblk ~fblk;
      (match lower_stmts env b tblk ~brk ~cont tb with
      | Some open_t -> set_term b open_t (Ir.Goto after)
      | None -> ());
      (match lower_stmts env b fblk ~brk ~cont fb with
      | Some open_f -> set_term b open_f (Ir.Goto after)
      | None -> ());
      Some after
  | Ast.While (c, body) ->
      let head = new_block b and bodyb = new_block b and after = new_block b in
      set_term b cur (Ir.Goto head);
      lower_cond env b head c ~tblk:bodyb ~fblk:after;
      (match
         lower_stmts env b bodyb ~brk:(Some after) ~cont:(Some head) body
       with
      | Some open_b -> set_term b open_b (Ir.Goto head)
      | None -> ());
      Some after
  | Ast.For (init, cond, step, body) -> (
      match lower_stmt env b cur ~brk ~cont init with
      | None -> None (* unreachable: init is a simple statement *)
      | Some cur' ->
          let head = new_block b
          and bodyb = new_block b
          and stepb = new_block b
          and after = new_block b in
          set_term b cur' (Ir.Goto head);
          lower_cond env b head cond ~tblk:bodyb ~fblk:after;
          (* continue jumps to the step block, preserving C semantics *)
          (match
             lower_stmts env b bodyb ~brk:(Some after) ~cont:(Some stepb) body
           with
          | Some open_b -> set_term b open_b (Ir.Goto stepb)
          | None -> ());
          (match lower_stmt env b stepb ~brk:None ~cont:None step with
          | Some open_s -> set_term b open_s (Ir.Goto head)
          | None -> ());
          Some after)
  | Ast.Switch (e, cases, default) ->
      let scrut = lower_expr env e in
      let after = new_block b in
      let case_blocks =
        List.map (fun (v, body) -> (v, new_block b, body)) cases
      in
      let dblk = new_block b in
      set_term b cur
        (Ir.Switch
           (scrut, Array.of_list (List.map (fun (v, blk, _) -> (v, blk)) case_blocks), dblk));
      List.iter
        (fun (_, blk, body) ->
          match lower_stmts env b blk ~brk:(Some after) ~cont body with
          | Some open_b -> set_term b open_b (Ir.Goto after)
          | None -> ())
        case_blocks;
      (match lower_stmts env b dblk ~brk:(Some after) ~cont default with
      | Some open_d -> set_term b open_d (Ir.Goto after)
      | None -> ());
      Some after

and lower_stmts env b cur ~brk ~cont (ss : Ast.block) : int option =
  match ss with
  | [] -> Some cur
  | s :: rest -> (
      match lower_stmt env b cur ~brk ~cont s with
      | Some cur' -> lower_stmts env b cur' ~brk ~cont rest
      | None -> None (* unreachable tail dropped *))

let instr_weight = function
  | Ir.Set (_, _) -> 1
  | Ir.Store (_, _, _) -> 2
  | Ir.Print _ -> 1
  | Ir.Eval _ -> 0

let rec expr_weight = function
  | Ir.Const _ | Ir.Local _ | Ir.Read | Ir.ArrayLen _ -> 1
  | Ir.Load (_, e) | Ir.ArrayNew e | Ir.Unary (_, e) -> 1 + expr_weight e
  | Ir.Binary (_, a, b) -> 1 + expr_weight a + expr_weight b
  | Ir.Call (_, args) ->
      2 + Array.fold_left (fun acc e -> acc + expr_weight e) 0 args

let instr_full_weight i =
  instr_weight i
  +
  match i with
  | Ir.Set (_, e) | Ir.Print e | Ir.Eval e -> expr_weight e
  | Ir.Store (_, a, b) -> expr_weight a + expr_weight b

let term_expr_weight = function
  | Ir.Goto _ -> 0
  | Ir.If (e, _, _) | Ir.Switch (e, _, _) | Ir.Ret (Some e) -> expr_weight e
  | Ir.Ret None -> 0

let lower_func ~fids (f : Ast.func) : Ir.func =
  let env = { slots = Hashtbl.create 16; n_slots = 0; fids } in
  List.iter (fun p -> ignore (slot env p)) f.Ast.params;
  let b = { rev_instrs = Array.make 8 []; terms = Array.make 8 None; n_blocks = 0 } in
  let entry = new_block b in
  (match lower_stmts env b entry ~brk:None ~cont:None f.Ast.body with
  | Some open_b -> set_term b open_b (Ir.Ret None)
  | None -> ());
  let blocks =
    Array.init b.n_blocks (fun i ->
        let instrs = Array.of_list (List.rev b.rev_instrs.(i)) in
        let term =
          match b.terms.(i) with
          | Some t -> t
          | None -> Ir.Ret None (* unreferenced spare block *)
        in
        let weight =
          Array.fold_left (fun acc ins -> acc + instr_full_weight ins) 0 instrs
          + term_expr_weight term
        in
        { Ir.instrs; term; weight })
  in
  {
    Ir.name = f.Ast.name;
    n_params = List.length f.Ast.params;
    n_locals = env.n_slots;
    blocks;
  }

(** [lower program] lowers a checked program.  Function ids follow
    declaration order. *)
let lower (p : Ast.program) : Ir.program =
  let fids = Hashtbl.create 16 in
  List.iteri (fun i (f : Ast.func) -> Hashtbl.replace fids f.Ast.name i) p;
  { Ir.funcs = Array.of_list (List.map (lower_func ~fids) p) }
