(** Static checks on the minic AST, run before lowering.

    Scoping is function-wide (like C with all declarations hoisted):
    locals default to 0, so the checks are about obvious mistakes —
    undeclared names, unknown callees, arity mismatches, duplicate
    definitions, [break]/[continue] outside loops and duplicate case
    values — not a full definite-assignment analysis. *)

exception Error of string

let err fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let rec names_declared (b : Ast.block) : string list =
  List.concat_map
    (function
      | Ast.Decl (x, _) -> [ x ]
      | Ast.If (_, t, f) -> names_declared t @ names_declared f
      | Ast.While (_, b) -> names_declared b
      | Ast.For (init, _, step, b) ->
          names_declared [ init ] @ names_declared [ step ] @ names_declared b
      | Ast.Switch (_, cases, d) ->
          List.concat_map (fun (_, b) -> names_declared b) cases
          @ names_declared d
      | _ -> [])
    b

let check_func ~(arities : (string, int) Hashtbl.t) (f : Ast.func) =
  let fname = f.Ast.name in
  (* duplicate parameters *)
  let rec dup = function
    | [] -> None
    | x :: tl -> if List.mem x tl then Some x else dup tl
  in
  (match dup f.Ast.params with
  | Some x -> err "%s: duplicate parameter %s" fname x
  | None -> ());
  let declared = f.Ast.params @ names_declared f.Ast.body in
  (match dup declared with
  | Some x -> err "%s: duplicate declaration of %s" fname x
  | None -> ());
  List.iter
    (fun x ->
      if List.mem x Ast.builtins then err "%s: %s shadows a builtin" fname x)
    declared;
  let known x = List.mem x declared in
  let rec expr = function
    | Ast.Int _ -> ()
    | Ast.Var x -> if not (known x) then err "%s: undeclared variable %s" fname x
    | Ast.Index (x, e) ->
        if not (known x) then err "%s: undeclared array %s" fname x;
        expr e
    | Ast.Unary (_, e) -> expr e
    | Ast.Binary (_, a, b) ->
        expr a;
        expr b
    | Ast.Call (callee, args) ->
        List.iter expr args;
        let nargs = List.length args in
        (match callee with
        | "read" -> if nargs <> 0 then err "%s: read() takes no arguments" fname
        | "array" -> if nargs <> 1 then err "%s: array(n) takes one argument" fname
        | "len" -> if nargs <> 1 then err "%s: len(a) takes one argument" fname
        | _ -> (
            match Hashtbl.find_opt arities callee with
            | None -> err "%s: call to unknown function %s" fname callee
            | Some k ->
                if k <> nargs then
                  err "%s: %s expects %d arguments, got %d" fname callee k nargs))
  in
  let rec stmt ~in_loop = function
    | Ast.Decl (_, e) | Ast.Print e | Ast.Expr e -> expr e
    | Ast.Assign (x, e) ->
        if not (known x) then err "%s: undeclared variable %s" fname x;
        expr e
    | Ast.Store (x, i, e) ->
        if not (known x) then err "%s: undeclared array %s" fname x;
        expr i;
        expr e
    | Ast.If (c, t, f) ->
        expr c;
        List.iter (stmt ~in_loop) t;
        List.iter (stmt ~in_loop) f
    | Ast.While (c, b) ->
        expr c;
        List.iter (stmt ~in_loop:true) b
    | Ast.For (init, c, step, b) ->
        stmt ~in_loop init;
        expr c;
        stmt ~in_loop step;
        List.iter (stmt ~in_loop:true) b
    | Ast.Switch (e, cases, d) ->
        expr e;
        let vals = List.map fst cases in
        (match dup vals with
        | Some _ -> err "%s: duplicate case value" fname
        | None -> ());
        List.iter (fun (_, b) -> List.iter (stmt ~in_loop) b) cases;
        List.iter (stmt ~in_loop) d
    | Ast.Return (Some e) -> expr e
    | Ast.Return None -> ()
    | Ast.Break | Ast.Continue ->
        if not in_loop then err "%s: break/continue outside a loop" fname
  in
  List.iter (stmt ~in_loop:false) f.Ast.body

(** [check program] validates a whole program.
    @raise Error describing the first problem found. *)
let check (p : Ast.program) =
  let arities = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem arities f.Ast.name then
        err "duplicate function %s" f.Ast.name;
      if List.mem f.Ast.name Ast.builtins then
        err "function %s shadows a builtin" f.Ast.name;
      Hashtbl.replace arities f.Ast.name (List.length f.Ast.params))
    p;
  (match Hashtbl.find_opt arities "main" with
  | None -> err "program has no main()"
  | Some 0 -> ()
  | Some _ -> err "main() must take no parameters");
  List.iter (check_func ~arities) p
