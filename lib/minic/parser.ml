(** Recursive-descent parser for minic with precedence climbing for
    expressions.  Reports errors with line numbers. *)

exception Error of string

type state = { toks : (Lexer.token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise (Error (Printf.sprintf "line %d: %s" (line st) msg))

let expect_punct st s =
  match peek st with
  | Lexer.PUNCT p when p = s -> advance st
  | _ -> fail st (Printf.sprintf "expected '%s'" s)

let expect_kw st s =
  match peek st with
  | Lexer.KW k when k = s -> advance st
  | _ -> fail st (Printf.sprintf "expected '%s'" s)

let expect_ident st =
  match peek st with
  | Lexer.IDENT x ->
      advance st;
      x
  | _ -> fail st "expected identifier"

let accept_punct st s =
  match peek st with
  | Lexer.PUNCT p when p = s ->
      advance st;
      true
  | _ -> false

(* precedence table: larger binds tighter *)
let binop_of_punct = function
  | "||" -> Some (Ast.Or, 1)
  | "&&" -> Some (Ast.And, 2)
  | "|" -> Some (Ast.Bor, 3)
  | "^" -> Some (Ast.Bxor, 4)
  | "&" -> Some (Ast.Band, 5)
  | "==" -> Some (Ast.Eq, 6)
  | "!=" -> Some (Ast.Ne, 6)
  | "<" -> Some (Ast.Lt, 7)
  | "<=" -> Some (Ast.Le, 7)
  | ">" -> Some (Ast.Gt, 7)
  | ">=" -> Some (Ast.Ge, 7)
  | "<<" -> Some (Ast.Shl, 8)
  | ">>" -> Some (Ast.Shr, 8)
  | "+" -> Some (Ast.Add, 9)
  | "-" -> Some (Ast.Sub, 9)
  | "*" -> Some (Ast.Mul, 10)
  | "/" -> Some (Ast.Div, 10)
  | "%" -> Some (Ast.Mod, 10)
  | _ -> None

let rec parse_expr st = parse_binary st 0

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PUNCT p -> (
        match binop_of_punct p with
        | Some (op, prec) when prec >= min_prec ->
            advance st;
            let rhs = parse_binary st (prec + 1) in
            lhs := Ast.Binary (op, !lhs, rhs)
        | _ -> continue := false)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Lexer.PUNCT "-" ->
      advance st;
      Ast.Unary (Ast.Neg, parse_unary st)
  | Lexer.PUNCT "!" ->
      advance st;
      Ast.Unary (Ast.Not, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      Ast.Int n
  | Lexer.PUNCT "(" ->
      advance st;
      let e = parse_expr st in
      expect_punct st ")";
      e
  | Lexer.IDENT x -> (
      advance st;
      match peek st with
      | Lexer.PUNCT "(" ->
          advance st;
          let args = parse_args st in
          Ast.Call (x, args)
      | Lexer.PUNCT "[" ->
          advance st;
          let e = parse_expr st in
          expect_punct st "]";
          Ast.Index (x, e)
      | _ -> Ast.Var x)
  | _ -> fail st "expected expression"

and parse_args st =
  if accept_punct st ")" then []
  else begin
    let rec go acc =
      let e = parse_expr st in
      if accept_punct st "," then go (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

let rec parse_stmt st : Ast.stmt =
  match peek st with
  | Lexer.KW "var" ->
      advance st;
      let x = expect_ident st in
      expect_punct st "=";
      let e = parse_expr st in
      expect_punct st ";";
      Ast.Decl (x, e)
  | Lexer.KW "if" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let t = parse_block st in
      let f =
        match peek st with
        | Lexer.KW "else" -> (
            advance st;
            match peek st with
            | Lexer.KW "if" -> [ parse_stmt st ] (* else-if chain *)
            | _ -> parse_block st)
        | _ -> []
      in
      Ast.If (c, t, f)
  | Lexer.KW "while" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let b = parse_block st in
      Ast.While (c, b)
  | Lexer.KW "for" ->
      advance st;
      expect_punct st "(";
      let init = parse_simple_stmt st in
      expect_punct st ";";
      let cond = parse_expr st in
      expect_punct st ";";
      let step = parse_simple_stmt st in
      expect_punct st ")";
      let body = parse_block st in
      Ast.For (init, cond, step, body)
  | Lexer.KW "switch" ->
      advance st;
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      expect_punct st "{";
      let cases = ref [] and default = ref [] in
      let continue = ref true in
      while !continue do
        match peek st with
        | Lexer.KW "case" ->
            advance st;
            let neg = accept_punct st "-" in
            let v =
              match peek st with
              | Lexer.INT n ->
                  advance st;
                  if neg then -n else n
              | _ -> fail st "expected case value"
            in
            expect_punct st ":";
            let b = parse_block st in
            cases := (v, b) :: !cases
        | Lexer.KW "default" ->
            advance st;
            expect_punct st ":";
            default := parse_block st
        | Lexer.PUNCT "}" ->
            advance st;
            continue := false
        | _ -> fail st "expected 'case', 'default' or '}'"
      done;
      Ast.Switch (e, List.rev !cases, !default)
  | Lexer.KW "return" ->
      advance st;
      if accept_punct st ";" then Ast.Return None
      else begin
        let e = parse_expr st in
        expect_punct st ";";
        Ast.Return (Some e)
      end
  | Lexer.KW "break" ->
      advance st;
      expect_punct st ";";
      Ast.Break
  | Lexer.KW "continue" ->
      advance st;
      expect_punct st ";";
      Ast.Continue
  | Lexer.KW "print" ->
      advance st;
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      Ast.Print e
  | Lexer.IDENT x -> (
      advance st;
      match peek st with
      | Lexer.PUNCT "=" ->
          advance st;
          let e = parse_expr st in
          expect_punct st ";";
          Ast.Assign (x, e)
      | Lexer.PUNCT "[" ->
          advance st;
          let idx = parse_expr st in
          expect_punct st "]";
          if accept_punct st "=" then begin
            let e = parse_expr st in
            expect_punct st ";";
            Ast.Store (x, idx, e)
          end
          else fail st "expected '=' after index expression"
      | Lexer.PUNCT "(" ->
          advance st;
          let args = parse_args st in
          expect_punct st ";";
          Ast.Expr (Ast.Call (x, args))
      | _ -> fail st "expected '=', '[' or '(' after identifier")
  | _ -> fail st "expected statement"

(* headers of for-loops: a declaration, assignment, store or call,
   without the trailing semicolon *)
and parse_simple_stmt st : Ast.stmt =
  match peek st with
  | Lexer.KW "var" ->
      advance st;
      let x = expect_ident st in
      expect_punct st "=";
      Ast.Decl (x, parse_expr st)
  | Lexer.IDENT x -> (
      advance st;
      match peek st with
      | Lexer.PUNCT "=" ->
          advance st;
          Ast.Assign (x, parse_expr st)
      | Lexer.PUNCT "[" ->
          advance st;
          let idx = parse_expr st in
          expect_punct st "]";
          expect_punct st "=";
          Ast.Store (x, idx, parse_expr st)
      | Lexer.PUNCT "(" ->
          advance st;
          Ast.Expr (Ast.Call (x, parse_args st))
      | _ -> fail st "expected '=', '[' or '(' in loop header")
  | _ -> fail st "expected a simple statement in loop header"

and parse_block st : Ast.block =
  expect_punct st "{";
  let stmts = ref [] in
  while not (accept_punct st "}") do
    stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts

let parse_func st : Ast.func =
  expect_kw st "fn";
  let name = expect_ident st in
  expect_punct st "(";
  let params =
    if accept_punct st ")" then []
    else begin
      let rec go acc =
        let x = expect_ident st in
        if accept_punct st "," then go (x :: acc)
        else begin
          expect_punct st ")";
          List.rev (x :: acc)
        end
      in
      go []
    end
  in
  let body = parse_block st in
  { Ast.name; params; body }

(** [parse src] parses a whole program.
    @raise Error or {!Lexer.Error} on malformed input. *)
let parse (src : string) : Ast.program =
  let st = { toks = (Lexer.tokenize src).Lexer.toks; pos = 0 } in
  let funcs = ref [] in
  while peek st <> Lexer.EOF do
    funcs := parse_func st :: !funcs
  done;
  List.rev !funcs
