(** The minic compilation pipeline: source → AST → checks → IR → CFG
    shapes.  This is the "Intermediate Representation" stage of the
    paper's Table 2. *)

type compiled = {
  prog : Ir.program;  (** executable IR *)
  cfgs : Ba_cfg.Cfg.t array;  (** shape per function, index = fid *)
  names : string array;  (** function names, index = fid *)
}

(** [compile src] runs the whole front end.  Errors (lexing, parsing,
    checking, lowering) are returned as typed {!Ba_robust.Errors.t}
    values naming the failing stage. *)
let compile (src : string) : (compiled, Ba_robust.Errors.t) result =
  let parse_error stage message =
    Error (Ba_robust.Errors.Parse_error { stage; message })
  in
  match
    let ast = Parser.parse src in
    Check.check ast;
    let prog = Lower.lower ast in
    let cfgs = Ir.shape prog in
    let names = Array.map (fun f -> f.Ir.name) prog.Ir.funcs in
    { prog; cfgs; names }
  with
  | c -> Ok c
  | exception Lexer.Error m -> parse_error "lexer" m
  | exception Parser.Error m -> parse_error "parser" m
  | exception Check.Error m -> parse_error "check" m
  | exception Lower.Error m -> parse_error "lower" m

(** [compile_exn src] is {!compile} but raising [Failure] on error —
    convenient for the built-in workloads, which must compile. *)
let compile_exn src =
  match compile src with
  | Ok c -> c
  | Error e -> failwith (Ba_robust.Errors.to_string e)

(** [n_blocks c] is the per-function block count array the profiler
    needs. *)
let n_blocks (c : compiled) =
  Array.map Ba_cfg.Cfg.n_blocks c.cfgs

(** [run c ~input ~sink] executes the compiled program (see
    {!Interp.run}). *)
let run ?limit (c : compiled) ~input ~sink = Interp.run ?limit c.prog ~input ~sink

(** [profile c ~input] runs once and collects the edge-frequency
    profile. *)
let profile ?limit (c : compiled) ~input =
  Ba_profile.Collect.profile_of_run ~n_blocks:(n_blocks c) (fun sink ->
      ignore (run ?limit c ~input ~sink))

(** [of_ir prog] wraps an already-built IR program (e.g. the output of
    {!Transform}) in the compiled-program interface. *)
let of_ir (prog : Ir.program) : compiled =
  {
    prog;
    cfgs = Ir.shape prog;
    names = Array.map (fun f -> f.Ir.name) prog.Ir.funcs;
  }
