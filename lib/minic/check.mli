(** Static checks on the minic AST (run before lowering): undeclared
    names, unknown callees, arity mismatches, duplicate definitions,
    [break]/[continue] outside loops, duplicate case values, a valid
    [main]. *)

exception Error of string

(** @raise Error describing the first problem found. *)
val check : Ast.program -> unit
