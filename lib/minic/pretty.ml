(** Pretty-printer for the minic AST.  [parse (to_string p)] returns a
    structurally equal program — a property the test suite fuzzes — so
    this is also the canonical formatter for generated programs. *)

let binop = Ast.binop_to_string

(* precedence must mirror the parser's table so emitted parentheses are
   sufficient; we simply parenthesize every nested binary/unary
   expression, which is always safe and keeps the printer obviously
   correct *)
let rec expr (e : Ast.expr) : string =
  match e with
  | Ast.Int n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
  | Ast.Var x -> x
  | Ast.Index (x, i) -> Printf.sprintf "%s[%s]" x (expr i)
  | Ast.Unary (Ast.Neg, a) -> Printf.sprintf "(-%s)" (expr a)
  | Ast.Unary (Ast.Not, a) -> Printf.sprintf "(!%s)" (expr a)
  | Ast.Binary (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr a) (binop op) (expr b)
  | Ast.Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr args))

let rec stmt ~indent (s : Ast.stmt) : string =
  let pad = String.make indent ' ' in
  match s with
  | Ast.Decl (x, e) -> Printf.sprintf "%svar %s = %s;" pad x (expr e)
  | Ast.Assign (x, e) -> Printf.sprintf "%s%s = %s;" pad x (expr e)
  | Ast.Store (x, i, e) ->
      Printf.sprintf "%s%s[%s] = %s;" pad x (expr i) (expr e)
  | Ast.Print e -> Printf.sprintf "%sprint(%s);" pad (expr e)
  | Ast.Expr e -> Printf.sprintf "%s%s;" pad (expr e)
  | Ast.Return None -> pad ^ "return;"
  | Ast.Return (Some e) -> Printf.sprintf "%sreturn %s;" pad (expr e)
  | Ast.Break -> pad ^ "break;"
  | Ast.Continue -> pad ^ "continue;"
  | Ast.If (c, t, []) ->
      Printf.sprintf "%sif (%s) %s" pad (expr c) (block ~indent t)
  | Ast.If (c, t, f) ->
      Printf.sprintf "%sif (%s) %s else %s" pad (expr c) (block ~indent t)
        (block ~indent f)
  | Ast.While (c, b) ->
      Printf.sprintf "%swhile (%s) %s" pad (expr c) (block ~indent b)
  | Ast.For (init, c, step, b) ->
      let header s =
        (* strip the indentation and trailing ';' of the simple stmt *)
        let s = String.trim (stmt ~indent:0 s) in
        String.sub s 0 (String.length s - 1)
      in
      Printf.sprintf "%sfor (%s; %s; %s) %s" pad (header init) (expr c)
        (header step) (block ~indent b)
  | Ast.Switch (e, cases, d) ->
      let case (v, b) =
        Printf.sprintf "%s  case %d: %s" pad v (block ~indent:(indent + 2) b)
      in
      Printf.sprintf "%sswitch (%s) {\n%s\n%s  default: %s\n%s}" pad (expr e)
        (String.concat "\n" (List.map case cases))
        pad
        (block ~indent:(indent + 2) d)
        pad

and block ~indent (b : Ast.block) : string =
  if b = [] then "{ }"
  else
    Printf.sprintf "{\n%s\n%s}"
      (String.concat "\n" (List.map (stmt ~indent:(indent + 2)) b))
      (String.make indent ' ')

let func (f : Ast.func) : string =
  Printf.sprintf "fn %s(%s) %s" f.Ast.name
    (String.concat ", " f.Ast.params)
    (block ~indent:0 f.Ast.body)

(** Render a whole program as parseable source. *)
let program (p : Ast.program) : string =
  String.concat "\n\n" (List.map func p)
