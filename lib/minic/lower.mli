(** Lowering from the minic AST to the executable CFG IR: short-circuit
    conditions become extra branches, [switch] becomes a jump-table
    terminator, unreachable statements are dropped, names resolve to
    dense local slots and function indices. *)

exception Error of string

(** Lower a checked program.  Function ids follow declaration order. *)
val lower : Ast.program -> Ir.program
