(** The minic compilation pipeline: source → AST → checks → IR → CFG
    shapes. *)

type compiled = {
  prog : Ir.program;  (** executable IR *)
  cfgs : Ba_cfg.Cfg.t array;  (** shape per function, index = fid *)
  names : string array;  (** function names, index = fid *)
}

(** Run the whole front end; failures become typed
    [Parse_error { stage; message }] values. *)
val compile : string -> (compiled, Ba_robust.Errors.t) result

(** {!compile}, raising [Failure] on error. *)
val compile_exn : string -> compiled

(** Per-function block counts, as the profiler needs them. *)
val n_blocks : compiled -> int array

(** Execute the compiled program (see {!Interp.run}). *)
val run :
  ?limit:int ->
  compiled ->
  input:int array ->
  sink:Ba_cfg.Trace.sink ->
  Interp.result

(** Run once and collect the edge-frequency profile. *)
val profile : ?limit:int -> compiled -> input:int array -> Ba_profile.Profile.t

(** Wrap an already-built IR program (e.g. the output of {!Transform})
    in the compiled-program interface. *)
val of_ir : Ir.program -> compiled
