(** Recursive-descent parser for minic with precedence climbing. *)

exception Error of string

(** Parse a whole program.
    @raise Error (or {!Lexer.Error}) with a line number on malformed
    input. *)
val parse : string -> Ast.program
