(** Hand-written lexer for minic (no Menhir/ocamllex in the sealed
    environment, and the token language is tiny anyway). *)

type token =
  | INT of int
  | IDENT of string
  | KW of string  (** fn var if else while switch case default return
                      break continue print *)
  | PUNCT of string  (** operators and punctuation *)
  | EOF

type t = { toks : (token * int) array (* token, line *) }

exception Error of string

let keywords =
  [ "fn"; "var"; "if"; "else"; "while"; "for"; "switch"; "case"; "default";
    "return"; "break"; "continue"; "print" ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

(** [tokenize src] splits the source into tokens with line numbers.
    Comments run from [//] to end of line.
    @raise Error on an unexpected character. *)
let tokenize (src : string) : t =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do
        incr j
      done;
      push (INT (int_of_string (String.sub src !i (!j - !i))));
      i := !j
    end
    else if is_alpha c then begin
      let j = ref !i in
      while !j < n && is_alnum src.[!j] do
        incr j
      done;
      let word = String.sub src !i (!j - !i) in
      push (if List.mem word keywords then KW word else IDENT word);
      i := !j
    end
    else begin
      (* longest-match punctuation *)
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some (("<=" | ">=" | "==" | "!=" | "&&" | "||" | "<<" | ">>") as op) ->
          push (PUNCT op);
          i := !i + 2
      | _ -> (
          match c with
          | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '=' | '!' | '&' | '|'
          | '^' | '(' | ')' | '{' | '}' | '[' | ']' | ',' | ';' | ':' ->
              push (PUNCT (String.make 1 c));
              incr i
          | _ ->
              raise
                (Error
                   (Printf.sprintf "line %d: unexpected character %C" !line c)))
    end
  done;
  push EOF;
  { toks = Array.of_list (List.rev !toks) }
