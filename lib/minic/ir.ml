(** Executable CFG intermediate representation of minic.

    Names are resolved to dense local slots and function indices; each
    function is an array of basic blocks whose shape projects exactly
    onto {!Ba_cfg.Cfg} for the alignment algorithms, while remaining
    directly interpretable (see {!Interp}) to produce execution traces. *)

type expr =
  | Const of int
  | Local of int  (** read a local slot *)
  | Load of int * expr  (** [a\[e\]] where slot holds an array *)
  | Unary of Ast.unop * expr
  | Binary of Ast.binop * expr * expr
  | Call of int * expr array  (** user function by index *)
  | Read  (** next input integer, −1 when exhausted *)
  | ArrayNew of expr  (** fresh zero-filled array *)
  | ArrayLen of int  (** length of the array in a slot *)

type instr =
  | Set of int * expr  (** local := e *)
  | Store of int * expr * expr  (** slot[idx] := e *)
  | Print of expr
  | Eval of expr  (** evaluate for effect *)

type term =
  | Goto of int
  | If of expr * int * int  (** condition, then-target, else-target *)
  | Switch of expr * (int * int) array * int
      (** scrutinee, (case value, target) table, default target —
          projects to a multiway (register) branch *)
  | Ret of expr option

type block = {
  instrs : instr array;
  term : term;
  weight : int;  (** straight-line instruction estimate (AST nodes) *)
}

type func = {
  name : string;
  n_params : int;
  n_locals : int;  (** slots including params *)
  blocks : block array;  (** entry is block 0 *)
}

type program = { funcs : func array }

let find_func (p : program) name =
  let found = ref None in
  Array.iteri (fun i f -> if f.name = name then found := Some i) p.funcs;
  !found

(** Successor block ids of a terminator (shape order: conditional taken
    arm first, switch cases then default). *)
let term_successors = function
  | Goto l -> [ l ]
  | If (_, t, f) -> [ t; f ]
  | Switch (_, cases, d) -> Array.to_list (Array.map snd cases) @ [ d ]
  | Ret _ -> []

(** [to_cfg f] projects a function onto the pure CFG shape consumed by
    the aligners.  Conditional arms map to branch taken/fall arms;
    switches become multiway branches whose target table lists the case
    targets followed by the default. *)
let to_cfg (f : func) : Ba_cfg.Cfg.t =
  let blocks =
    Array.mapi
      (fun i b ->
        let term =
          match b.term with
          | Goto l -> Ba_cfg.Block.Goto l
          | If (_, t, fl) -> Ba_cfg.Block.Branch { t; f = fl }
          | Switch (_, cases, d) ->
              Ba_cfg.Block.Multiway
                (Array.append (Array.map snd cases) [| d |])
          | Ret _ -> Ba_cfg.Block.Exit
        in
        Ba_cfg.Block.make ~id:i ~size:b.weight term)
      f.blocks
  in
  Ba_cfg.Cfg.make ~name:f.name ~entry:0 blocks

(** [shape p] projects the whole program; index [fid] matches
    [p.funcs.(fid)]. *)
let shape (p : program) : Ba_cfg.Cfg.t array = Array.map to_cfg p.funcs
