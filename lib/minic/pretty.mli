(** Pretty-printer for the minic AST.  [Parser.parse (program p)] returns
    a structurally equal program (for programs whose integer literals are
    non-negative — the parser produces negatives via unary minus). *)

val expr : Ast.expr -> string
val stmt : indent:int -> Ast.stmt -> string
val block : indent:int -> Ast.block -> string
val func : Ast.func -> string

(** Render a whole program as parseable source. *)
val program : Ast.program -> string
