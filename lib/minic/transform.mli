(** Code replication on the executable IR: tail duplication of small,
    hot join blocks into their unconditional predecessors (the
    complementary technique to alignment discussed in the paper's
    related work [15, 22]).  Observable behaviour is preserved; block
    counts and code size grow. *)

type config = {
  max_size : int;  (** largest block weight worth cloning *)
  min_count : int;  (** minimum profiled edge count to bother *)
}

val default : config

type stats = {
  clones : int;  (** blocks duplicated *)
  grown_weight : int;  (** total instruction weight added *)
}

(** Tail-duplicate one function; [edge_count] gives profiled transfer
    counts. *)
val func :
  ?config:config ->
  edge_count:(src:int -> dst:int -> int) ->
  Ir.func ->
  Ir.func * stats

(** Transform every function, taking hotness from the profile. *)
val program :
  ?config:config ->
  Ir.program ->
  profile:Ba_profile.Profile.t ->
  Ir.program * stats
