(** Code replication on the executable IR: tail duplication.

    The paper's related-work section cites code replication (Krall [15];
    Mueller & Whalley [22]) as the complementary technique to alignment:
    where alignment can only pick {e one} layout successor per block,
    duplicating a small join block into its hot predecessors gives every
    hot path its own copy to fall into — trading code size (and I-cache
    pressure) for fewer taken branches.  This transform runs on the
    executable IR, so the duplicated program still runs, profiles and
    simulates end-to-end; the test suite checks observable behaviour is
    unchanged.

    The transform clones a block [S] for a predecessor [P] when:
    - [P] ends in [Goto S] (an unconditional join edge),
    - [S] has more than one predecessor (otherwise alignment already
      wins),
    - [S] is not the entry block and not [P] itself,
    - [S]'s weight is at most [max_size],
    - the edge is {e hot}: its profiled count is at least [min_count]
      (profile supplied per function).

    One pass, no fixpoint: a clone can itself end in [Goto], but we do
    not re-duplicate within the same call, bounding code growth. *)

type config = {
  max_size : int;  (** largest block weight worth cloning *)
  min_count : int;  (** minimum profiled edge count to bother *)
}

let default = { max_size = 12; min_count = 1 }

type stats = {
  clones : int;  (** blocks duplicated *)
  grown_weight : int;  (** total instruction weight added *)
}

(** [func ?config ~edge_count f] tail-duplicates one function.
    [edge_count ~src ~dst] is the profiled transfer count (from a
    training run of this same function). *)
let func ?(config = default) ~(edge_count : src:int -> dst:int -> int)
    (f : Ir.func) : Ir.func * stats =
  let n = Array.length f.Ir.blocks in
  (* count predecessors over distinct CFG edges *)
  let preds = Array.make n 0 in
  Array.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun s -> preds.(s) <- preds.(s) + 1)
        (List.sort_uniq compare (Ir.term_successors b.Ir.term)))
    f.Ir.blocks;
  let extra = ref [] in
  let n_extra = ref 0 in
  let clones = ref 0 and grown = ref 0 in
  let blocks =
    Array.mapi
      (fun p (b : Ir.block) ->
        match b.Ir.term with
        | Ir.Goto s
          when s <> p && s <> 0
               && preds.(s) > 1
               && f.Ir.blocks.(s).Ir.weight <= config.max_size
               && edge_count ~src:p ~dst:s >= config.min_count ->
            let clone_id = n + !n_extra in
            incr n_extra;
            incr clones;
            grown := !grown + f.Ir.blocks.(s).Ir.weight;
            extra := f.Ir.blocks.(s) :: !extra;
            { b with Ir.term = Ir.Goto clone_id }
        | _ -> b)
      f.Ir.blocks
  in
  ( { f with Ir.blocks = Array.append blocks (Array.of_list (List.rev !extra)) },
    { clones = !clones; grown_weight = !grown } )

(** [program ?config prog ~profile] transforms every function, using the
    per-function profiles for hotness. *)
let program ?config (prog : Ir.program) ~(profile : Ba_profile.Profile.t) :
    Ir.program * stats =
  let total = ref { clones = 0; grown_weight = 0 } in
  let funcs =
    Array.mapi
      (fun fid f ->
        let pr = Ba_profile.Profile.proc profile fid in
        let edge_count ~src ~dst = Ba_profile.Profile.freq pr ~src ~dst in
        let f', st = func ?config ~edge_count f in
        total :=
          {
            clones = !total.clones + st.clones;
            grown_weight = !total.grown_weight + st.grown_weight;
          };
        f')
      prog.Ir.funcs
  in
  ({ Ir.funcs }, !total)
