(** Abstract syntax of minic, the small imperative language used as the
    compiler front end of this reproduction (the SUIF stand-in).

    Values are machine integers and integer arrays.  Control flow is
    structured: [if]/[else], [while] (with [break]/[continue]) and
    [switch] (no fall-through; each case is its own block, lowered to an
    indirect jump), which together generate all the CFG shapes the
    alignment algorithms care about — conditionals, loops, and multiway
    register branches. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And  (** short-circuit in conditions, strict 0/1 in value position *)
  | Or   (** likewise *)
  | Band | Bor | Bxor | Shl | Shr

type unop = Neg | Not

type expr =
  | Int of int
  | Var of string
  | Index of string * expr  (** [a\[e\]] *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list
      (** user function call, or one of the builtins: [read()] (next input
          integer, −1 when exhausted), [array(n)] (fresh zero array),
          [len(a)] *)

type stmt =
  | Decl of string * expr  (** [var x = e;] — function-scoped *)
  | Assign of string * expr
  | Store of string * expr * expr  (** [a\[i\] = e;] *)
  | If of expr * block * block
  | While of expr * block
  | For of stmt * expr * stmt * block
      (** [for (init; cond; step) { … }] — [init]/[step] are simple
          statements (declaration, assignment or store); [continue]
          jumps to the step *)
  | Switch of expr * (int * block) list * block  (** cases, default *)
  | Return of expr option
  | Break
  | Continue
  | Print of expr  (** append to the program's output stream *)
  | Expr of expr  (** expression statement (calls) *)

and block = stmt list

type func = { name : string; params : string list; body : block }

(** A program is a list of functions; execution starts at [main()]. *)
type program = func list

(** Builtin function names (reserved). *)
let builtins = [ "read"; "array"; "len" ]

(** Number of AST nodes in an expression — the stand-in for "number of
    instructions" when sizing basic blocks. *)
let rec expr_weight = function
  | Int _ | Var _ -> 1
  | Index (_, e) -> 1 + expr_weight e
  | Unary (_, e) -> 1 + expr_weight e
  | Binary (_, a, b) -> 1 + expr_weight a + expr_weight b
  | Call (_, args) ->
      2 + List.fold_left (fun acc e -> acc + expr_weight e) 0 args

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | And -> "&&" | Or -> "||"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
