(** Interpreter for the minic IR, emitting trace events.

    This is simultaneously the "instrumented program" and the "hardware"
    of the reproduction: every executed basic block is reported to the
    trace sink, from which the profiler collects edge frequencies and the
    machine model simulates pipelines and caches.  Execution is
    deterministic given the program and input. *)

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

type value = Vint of int | Varr of int array

type state = {
  prog : Ir.program;
  input : int array;
  mutable cursor : int;  (** next input index for [read()] *)
  mutable out : int list;  (** reversed output of [print] *)
  mutable blocks_executed : int;
  limit : int;  (** block-execution budget; guards runaway programs *)
  mutable depth : int;  (** current call depth *)
  max_depth : int;  (** recursion budget; fails fast on runaway recursion *)
  sink : Ba_cfg.Trace.sink;
}

let as_int = function
  | Vint n -> n
  | Varr _ -> err "expected an integer, got an array"

let as_arr = function
  | Varr a -> a
  | Vint _ -> err "expected an array, got an integer"

let truthy v = as_int v <> 0

let binop op a b =
  let ia = as_int a and ib = as_int b in
  let bool_ c = Vint (if c then 1 else 0) in
  match (op : Ast.binop) with
  | Ast.Add -> Vint (ia + ib)
  | Ast.Sub -> Vint (ia - ib)
  | Ast.Mul -> Vint (ia * ib)
  | Ast.Div -> if ib = 0 then err "division by zero" else Vint (ia / ib)
  | Ast.Mod -> if ib = 0 then err "modulo by zero" else Vint (ia mod ib)
  | Ast.Lt -> bool_ (ia < ib)
  | Ast.Le -> bool_ (ia <= ib)
  | Ast.Gt -> bool_ (ia > ib)
  | Ast.Ge -> bool_ (ia >= ib)
  | Ast.Eq -> bool_ (ia = ib)
  | Ast.Ne -> bool_ (ia <> ib)
  | Ast.And -> bool_ (ia <> 0 && ib <> 0)
  | Ast.Or -> bool_ (ia <> 0 || ib <> 0)
  | Ast.Band -> Vint (ia land ib)
  | Ast.Bor -> Vint (ia lor ib)
  | Ast.Bxor -> Vint (ia lxor ib)
  | Ast.Shl ->
      if ib < 0 || ib > 62 then err "shift amount %d out of range" ib
      else Vint (ia lsl ib)
  | Ast.Shr ->
      if ib < 0 || ib > 62 then err "shift amount %d out of range" ib
      else Vint (ia asr ib)

let rec eval (st : state) (locals : value array) (e : Ir.expr) : value =
  match e with
  | Ir.Const n -> Vint n
  | Ir.Local s -> locals.(s)
  | Ir.Load (s, i) ->
      let a = as_arr locals.(s) and idx = as_int (eval st locals i) in
      if idx < 0 || idx >= Array.length a then
        err "array index %d out of bounds (length %d)" idx (Array.length a)
      else Vint a.(idx)
  | Ir.Unary (Ast.Neg, a) -> Vint (-as_int (eval st locals a))
  | Ir.Unary (Ast.Not, a) -> Vint (if as_int (eval st locals a) = 0 then 1 else 0)
  | Ir.Binary (op, a, b) ->
      let va = eval st locals a in
      let vb = eval st locals b in
      binop op va vb
  | Ir.Call (fid, args) ->
      let vs = Array.map (eval st locals) args in
      call st fid vs
  | Ir.Read ->
      if st.cursor >= Array.length st.input then Vint (-1)
      else begin
        let v = st.input.(st.cursor) in
        st.cursor <- st.cursor + 1;
        Vint v
      end
  | Ir.ArrayNew n ->
      let len = as_int (eval st locals n) in
      if len < 0 then err "array(%d): negative length" len
      else Varr (Array.make len 0)
  | Ir.ArrayLen s -> Vint (Array.length (as_arr locals.(s)))

and exec_instr st locals = function
  | Ir.Set (s, e) -> locals.(s) <- eval st locals e
  | Ir.Store (s, i, e) ->
      let a = as_arr locals.(s) in
      let idx = as_int (eval st locals i) in
      if idx < 0 || idx >= Array.length a then
        err "store index %d out of bounds (length %d)" idx (Array.length a)
      else a.(idx) <- as_int (eval st locals e)
  | Ir.Print e -> st.out <- as_int (eval st locals e) :: st.out
  | Ir.Eval e -> ignore (eval st locals e)

and call (st : state) fid (args : value array) : value =
  let f = st.prog.Ir.funcs.(fid) in
  if Array.length args <> f.Ir.n_params then
    err "%s: arity mismatch" f.Ir.name;
  st.depth <- st.depth + 1;
  if st.depth > st.max_depth then
    err "call depth limit (%d) exceeded" st.max_depth;
  st.sink (Ba_cfg.Trace.Enter fid);
  let locals = Array.make (max 1 f.Ir.n_locals) (Vint 0) in
  Array.blit args 0 locals 0 (Array.length args);
  let result = ref (Vint 0) in
  let blk = ref 0 and running = ref true in
  while !running do
    st.blocks_executed <- st.blocks_executed + 1;
    if st.blocks_executed > st.limit then
      err "block execution limit (%d) exceeded" st.limit;
    let b = f.Ir.blocks.(!blk) in
    st.sink (Ba_cfg.Trace.Block !blk);
    Array.iter (exec_instr st locals) b.Ir.instrs;
    match b.Ir.term with
    | Ir.Goto l -> blk := l
    | Ir.If (c, t, fl) -> blk := (if truthy (eval st locals c) then t else fl)
    | Ir.Switch (e, cases, d) ->
        let v = as_int (eval st locals e) in
        let target = ref d in
        Array.iter (fun (cv, blk') -> if cv = v then target := blk') cases;
        blk := !target
    | Ir.Ret e ->
        (match e with Some e -> result := eval st locals e | None -> ());
        running := false
  done;
  st.sink Ba_cfg.Trace.Leave;
  st.depth <- st.depth - 1;
  !result

type result = {
  output : int list;  (** values printed, in order *)
  return_value : int;
  blocks_executed : int;
  inputs_consumed : int;
}

(** [run ?limit prog ~input ~sink] executes [main()] and returns the
    observable results.  [limit] bounds total block executions (default
    200 million).
    @raise Runtime_error on dynamic errors or budget exhaustion. *)
let run ?(limit = 200_000_000) ?(max_depth = 100_000) (prog : Ir.program)
    ~(input : int array) ~(sink : Ba_cfg.Trace.sink) : result =
  match Ir.find_func prog "main" with
  | None -> err "program has no main()"
  | Some fid ->
      let st =
        {
          prog; input; cursor = 0; out = []; blocks_executed = 0; limit;
          depth = 0; max_depth; sink;
        }
      in
      let v = call st fid [||] in
      {
        output = List.rev st.out;
        return_value = as_int v;
        blocks_executed = st.blocks_executed;
        inputs_consumed = st.cursor;
      }
