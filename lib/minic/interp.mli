(** Interpreter for the minic IR, emitting trace events — simultaneously
    the instrumented program and the hardware of the reproduction.
    Deterministic given program and input. *)

exception Runtime_error of string

type value = Vint of int | Varr of int array

type result = {
  output : int list;  (** values printed, in order *)
  return_value : int;
  blocks_executed : int;
  inputs_consumed : int;
}

(** [run ?limit ?max_depth prog ~input ~sink] executes [main()].
    [limit] bounds total block executions (default 200 million);
    [max_depth] bounds call depth (default 100,000 — fails fast on
    runaway recursion).
    @raise Runtime_error on dynamic errors or budget exhaustion. *)
val run :
  ?limit:int ->
  ?max_depth:int ->
  Ir.program ->
  input:int array ->
  sink:Ba_cfg.Trace.sink ->
  result
