(** Edge-frequency profiles.  The interface documentation (what profiles
    record and what they drive) lives in [profile.mli]; this file only
    documents implementation details. *)

open Ba_cfg

(** Per-procedure profile: [freqs.(src)] lists [(dst, count)] pairs sorted
    by destination label, with positive counts only. *)
type proc = { freqs : (Block.label * int) array array }

(** Whole-program profile, indexed by procedure id.  [calls] records the
    dynamic call graph: [(caller, callee, count)] triples with positive
    counts, sorted; calls from outside the program (the initial [main]
    invocation) are not included. *)
type t = { procs : proc array; calls : (int * int * int) list }

let n_procs t = Array.length t.procs

(** [proc t fid] is the profile of procedure [fid]. *)
let proc t fid = t.procs.(fid)

(** [block_freqs p l] is the per-destination transfer counts of block
    [l] (empty if the block never transferred control). *)
let block_freqs (p : proc) l = p.freqs.(l)

(** [freq p ~src ~dst] is the recorded count of transfers [src → dst]. *)
let freq (p : proc) ~src ~dst =
  Array.fold_left
    (fun acc (d, n) -> if d = dst then acc + n else acc)
    0 p.freqs.(src)

(** [out_count p l] is the total number of transfers out of block [l]. *)
let out_count (p : proc) l =
  Array.fold_left (fun acc (_, n) -> acc + n) 0 p.freqs.(l)

(** [predicted p l] is the statically predicted successor of block [l]:
    the most frequently taken CFG successor during training, ties broken
    towards the smaller label; [None] if the block never transferred
    control. *)
let predicted (p : proc) l =
  let best = ref None in
  Array.iter
    (fun (d, n) ->
      match !best with
      | Some (_, bn) when bn >= n -> ()
      | _ -> best := Some (d, n))
    p.freqs.(l);
  Option.map fst !best

(** [predictions p ~n_blocks] tabulates {!predicted} for all blocks. *)
let predictions (p : proc) ~n_blocks =
  Array.init n_blocks (fun l -> predicted p l)

(** [total_transfers p] sums transfer counts over all blocks. *)
let total_transfers (p : proc) =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun a (_, n) -> a + n) acc row)
    0 p.freqs

(** Program-wide total transfer count. *)
let program_transfers t =
  Array.fold_left (fun acc p -> acc + total_transfers p) 0 t.procs

(** [call_freq t ~caller ~callee] is the recorded dynamic call count. *)
let call_freq t ~caller ~callee =
  List.fold_left
    (fun acc (c, e, n) -> if c = caller && e = callee then acc + n else acc)
    0 t.calls

(** [total_calls t] is the number of recorded intra-program calls. *)
let total_calls t = List.fold_left (fun acc (_, _, n) -> acc + n) 0 t.calls

(** [branch_sites_touched g p] counts static CTI blocks of [g] that
    executed (transferred control) at least once under [p] — the paper's
    Table 1 "Branch Sites Touched" statistic for one procedure. *)
let branch_sites_touched (g : Cfg.t) (p : proc) =
  let n = ref 0 in
  Cfg.iter
    (fun b ->
      if Block.is_cti b && Array.length p.freqs.(b.Block.id) > 0 then incr n)
    g;
  !n

(** [executed_branches g p] counts dynamic transfers out of blocks ending
    in a CTI — the paper's Table 1 "Executed Branch Instructions"
    statistic for one procedure. *)
let executed_branches (g : Cfg.t) (p : proc) =
  let n = ref 0 in
  Cfg.iter
    (fun b ->
      if Block.is_cti b then
        Array.iter (fun (_, c) -> n := !n + c) p.freqs.(b.Block.id))
    g;
  !n

(** [scale k p] multiplies every count by [k] (used by tests and by
    profile mixing).  @raise Invalid_argument if [k < 0]. *)
let scale k (p : proc) =
  if k < 0 then invalid_arg "Profile.scale: negative factor";
  { freqs = Array.map (Array.map (fun (d, n) -> (d, n * k))) p.freqs }

(** [of_freqs rows] builds a per-procedure profile from one raw
    [(dst, count)] row per block, re-establishing the row invariant
    instead of trusting the caller: duplicate destinations are summed,
    non-positive counts dropped, and each row is sorted by destination
    label. *)
let of_freqs (rows : (Block.label * int) array array) =
  let tbl = Hashtbl.create 16 in
  {
    freqs =
      Array.map
        (fun row ->
          Hashtbl.reset tbl;
          Array.iter
            (fun (d, n) ->
              Hashtbl.replace tbl d
                (n + Option.value ~default:0 (Hashtbl.find_opt tbl d)))
            row;
          Hashtbl.fold (fun d n acc -> if n > 0 then (d, n) :: acc else acc) tbl []
          |> List.sort compare |> Array.of_list)
        rows;
  }

(** [merge a b] sums two profiles of the same procedure shape.
    @raise Invalid_argument on shape mismatch. *)
let merge (a : proc) (b : proc) =
  if Array.length a.freqs <> Array.length b.freqs then
    invalid_arg "Profile.merge: different block counts";
  of_freqs
    (Array.init (Array.length a.freqs) (fun l ->
         Array.append a.freqs.(l) b.freqs.(l)))

(** [validate_proc g p] checks that every recorded destination is a CFG
    successor of its source block and every count is positive. *)
let validate_proc (g : Cfg.t) (p : proc) =
  if Array.length p.freqs <> Cfg.n_blocks g then
    Error "profile has wrong number of blocks"
  else
    let bad = ref None in
    Array.iteri
      (fun src row ->
        Array.iter
          (fun (dst, n) ->
            if n <= 0 && !bad = None then
              bad := Some (Printf.sprintf "non-positive count on %d->%d" src dst);
            if
              (dst < 0 || dst >= Cfg.n_blocks g
              || not (Block.has_successor (Cfg.block g src) dst))
              && !bad = None
            then bad := Some (Printf.sprintf "%d->%d is not a CFG edge" src dst))
          row)
      p.freqs;
    match !bad with None -> Ok () | Some m -> Error m

(** [validate cfgs t] checks a whole-program profile against the program
    it claims to describe: matching procedure count, matching per-proc
    block counts, no dangling destination labels, positive counts only,
    and a well-formed call graph.  The first violation is reported as a
    typed error carrying the offending procedure and edge. *)
let validate (cfgs : Cfg.t array) (t : t) :
    (unit, Ba_robust.Errors.t) result =
  let open Ba_robust.Errors in
  let n_procs = Array.length t.procs and n_cfgs = Array.length cfgs in
  if n_procs <> n_cfgs then
    Error
      (Profile_mismatch
         { proc = None; expected = n_cfgs; got = n_procs; what = "procedures" })
  else begin
    let bad = ref None in
    let fail e = if !bad = None then bad := Some e in
    Array.iteri
      (fun fid g ->
        let p = t.procs.(fid) in
        let nb = Cfg.n_blocks g in
        if Array.length p.freqs <> nb then
          fail
            (Profile_mismatch
               {
                 proc = Some fid;
                 expected = nb;
                 got = Array.length p.freqs;
                 what = "blocks";
               })
        else
          Array.iteri
            (fun src row ->
              Array.iter
                (fun (dst, n) ->
                  if n <= 0 then
                    fail
                      (Invalid_profile
                         {
                           proc = Some fid;
                           src = Some src;
                           dst = Some dst;
                           reason = Printf.sprintf "non-positive count %d" n;
                         })
                  else if dst < 0 || dst >= nb then
                    fail
                      (Invalid_profile
                         {
                           proc = Some fid;
                           src = Some src;
                           dst = Some dst;
                           reason = "dangling destination label";
                         })
                  else if not (Block.has_successor (Cfg.block g src) dst) then
                    fail
                      (Invalid_profile
                         {
                           proc = Some fid;
                           src = Some src;
                           dst = Some dst;
                           reason = "not a CFG edge";
                         }))
                row)
            p.freqs)
      cfgs;
    List.iter
      (fun (caller, callee, n) ->
        if caller < 0 || caller >= n_cfgs || callee < 0 || callee >= n_cfgs
        then
          fail
            (Invalid_profile
               {
                 proc = Some caller;
                 src = None;
                 dst = None;
                 reason = Printf.sprintf "call %d->%d names a missing procedure" caller callee;
               })
        else if n <= 0 then
          fail
            (Invalid_profile
               {
                 proc = Some caller;
                 src = None;
                 dst = None;
                 reason = Printf.sprintf "call %d->%d has non-positive count %d" caller callee n;
               }))
      t.calls;
    match !bad with None -> Ok () | Some e -> Error e
  end

(** [of_assoc ~n_blocks edges] builds a per-procedure profile from raw
    [(src, dst, count)] triples, summing duplicates and dropping zeros.
    Intended for tests and synthetic workloads. *)
let of_assoc ~n_blocks edges =
  let tbls = Array.init n_blocks (fun _ -> Hashtbl.create 4) in
  List.iter
    (fun (src, dst, n) ->
      if src < 0 || src >= n_blocks then invalid_arg "Profile.of_assoc: bad src";
      let t = tbls.(src) in
      Hashtbl.replace t dst (n + Option.value ~default:0 (Hashtbl.find_opt t dst)))
    edges;
  {
    freqs =
      Array.map
        (fun t ->
          Hashtbl.fold (fun d n acc -> if n > 0 then (d, n) :: acc else acc) t []
          |> List.sort compare |> Array.of_list)
        tbls;
  }

let pp_proc ppf (p : proc) =
  Array.iteri
    (fun src row ->
      if Array.length row > 0 then
        Fmt.pf ppf "@[<h>%d ->%a@]@."
          src
          Fmt.(array ~sep:nop (fun ppf (d, n) -> Fmt.pf ppf " %d:%d" d n))
          row)
    p.freqs
