(** Online profiler: folds a trace-event stream into a {!Profile.t}.

    This is the stand-in for the paper's HALT instrumentation: it observes
    the same information (every intraprocedural control transfer) without
    storing the trace. *)

open Ba_cfg

type t = {
  tables : (int, int) Hashtbl.t array array;
      (** [tables.(fid).(src)] maps destination to count *)
  calls : (int * int, int) Hashtbl.t;  (** dynamic call-graph edges *)
  sink : Trace.sink;
}

(** [create ~n_blocks] starts a collector for a program whose procedure
    [fid] has [n_blocks.(fid)] basic blocks. *)
let create ~(n_blocks : int array) : t =
  let tables =
    Array.map (fun n -> Array.init n (fun _ -> Hashtbl.create 2)) n_blocks
  in
  let calls = Hashtbl.create 16 in
  let sink =
    Trace.invocation_walker
      ~on_call:(fun ~caller ~callee ->
        match caller with
        | None -> ()
        | Some c ->
            Hashtbl.replace calls (c, callee)
              (1 + Option.value ~default:0 (Hashtbl.find_opt calls (c, callee))))
      ~on_block:(fun ~fid ~bid ~prev ->
        match prev with
        | None -> ()
        | Some src ->
            let tbl = tables.(fid).(src) in
            Hashtbl.replace tbl bid
              (1 + Option.value ~default:0 (Hashtbl.find_opt tbl bid)))
      ()
  in
  { tables; calls; sink }

(** The event sink to feed the interpreter's trace into. *)
let sink t = t.sink

(** [freeze t] produces the immutable profile collected so far. *)
let freeze t : Profile.t =
  {
    Profile.procs =
      Array.map
        (fun proc_tables ->
          {
            Profile.freqs =
              Array.map
                (fun tbl ->
                  Hashtbl.fold (fun d n acc -> (d, n) :: acc) tbl []
                  |> List.sort compare |> Array.of_list)
                proc_tables;
          })
        t.tables;
    calls =
      Hashtbl.fold (fun (c, e) n acc -> (c, e, n) :: acc) t.calls []
      |> List.sort compare;
  }

(** [profile_of_run ~n_blocks run] profiles one execution: [run] is given
    a sink and must replay the program into it. *)
let profile_of_run ~n_blocks (run : Trace.sink -> unit) : Profile.t =
  let c = create ~n_blocks in
  run c.sink;
  freeze c
