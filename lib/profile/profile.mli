(** Edge-frequency profiles: per-block transfer counts plus the dynamic
    call graph, collected from a training run.  Profiles drive the
    static predictions (most common successor) and the DTSP edge weights
    of the reduction. *)

open Ba_cfg

(** Per-procedure profile: [freqs.(src)] lists [(dst, count)] pairs
    sorted by destination label, positive counts only. *)
type proc = { freqs : (Block.label * int) array array }

(** Whole-program profile.  [calls] is the dynamic call graph as sorted
    [(caller, callee, count)] triples (the initial [main] invocation has
    no caller and is not recorded). *)
type t = { procs : proc array; calls : (int * int * int) list }

val n_procs : t -> int
val proc : t -> int -> proc

(** Per-destination transfer counts of block [l]. *)
val block_freqs : proc -> Block.label -> (Block.label * int) array

(** Recorded count of transfers [src → dst]. *)
val freq : proc -> src:Block.label -> dst:Block.label -> int

(** Total transfers out of block [l]. *)
val out_count : proc -> Block.label -> int

(** Statically predicted successor: most frequent during training, ties
    towards the smaller label; [None] if the block never transferred. *)
val predicted : proc -> Block.label -> Block.label option

(** {!predicted} tabulated for all blocks. *)
val predictions : proc -> n_blocks:int -> Block.label option array

val total_transfers : proc -> int
val program_transfers : t -> int

(** Dynamic call count caller → callee. *)
val call_freq : t -> caller:int -> callee:int -> int

(** Total recorded intra-program calls. *)
val total_calls : t -> int

(** Table 1 statistic: static CTI blocks that executed at least once. *)
val branch_sites_touched : Cfg.t -> proc -> int

(** Table 1 statistic: dynamic transfers out of CTI blocks. *)
val executed_branches : Cfg.t -> proc -> int

(** Multiply every count by [k].  @raise Invalid_argument if [k < 0]. *)
val scale : int -> proc -> proc

(** Sum two profiles of the same shape.
    @raise Invalid_argument on shape mismatch. *)
val merge : proc -> proc -> proc

(** Check every destination is a CFG successor and counts are positive
    (one procedure). *)
val validate_proc : Cfg.t -> proc -> (unit, string) result

(** Validate a whole-program profile against the program it claims to
    describe: procedure count, per-proc block counts, dangling labels,
    non-positive counts, call-graph well-formedness.  The first violation
    is reported as a typed error naming the procedure and edge. *)
val validate : Cfg.t array -> t -> (unit, Ba_robust.Errors.t) result

(** Build a per-procedure profile from raw [(src, dst, count)] triples,
    summing duplicates and dropping zeros. *)
val of_assoc : n_blocks:int -> (int * int * int) list -> proc

(** Smart constructor: build a per-procedure profile from one raw
    [(dst, count)] row per block, enforcing the documented row invariant
    (sorted by destination, positive counts only, duplicates summed)
    rather than leaving it implicit at each construction site. *)
val of_freqs : (Block.label * int) array array -> proc

val pp_proc : Format.formatter -> proc -> unit
