(** Online profiler: folds a trace-event stream into a {!Profile.t}
    without storing the trace (the HALT-instrumentation stand-in). *)

open Ba_cfg

type t

(** [create ~n_blocks] starts a collector for a program whose procedure
    [fid] has [n_blocks.(fid)] basic blocks. *)
val create : n_blocks:int array -> t

(** The event sink to feed the interpreter's trace into. *)
val sink : t -> Trace.sink

(** The immutable profile collected so far. *)
val freeze : t -> Profile.t

(** [profile_of_run ~n_blocks run] profiles one execution: [run] is
    handed a sink and must replay the program into it. *)
val profile_of_run : n_blocks:int array -> (Trace.sink -> unit) -> Profile.t
