(** Solver budgets: a wall-clock deadline and/or a move allowance.

    A budget is created once per solve (or shared by a whole program's
    worth of solves) and threaded down into the inner local-search loops,
    which [spend] one unit per improving move and poll {!exhausted}
    between moves.  An exhausted budget never aborts a solve abruptly —
    the solver stops at the next poll and returns its best tour so far,
    flagging the result as degraded.

    [gettimeofday] is a vDSO call on every platform we target, so
    {!exhausted} polls the clock directly rather than amortizing; move
    spending is a single [Atomic.fetch_and_add], allocation-free.

    {2 Shared-budget semantics under concurrent solves}

    One budget may be polled by several domains solving different
    procedures at once (the executor pool).  The semantics are:

    - the deadline is an {e absolute} wall-clock instant, shared by all
      domains: every concurrent solve observes exhaustion at the same
      moment, regardless of which domain it runs on;
    - the move counter is the {e global} total across all concurrent
      solves: each domain's [spend] contributes to the same allowance,
      so [max_moves] bounds the whole program's work, not one solve's.
      Increments are atomic — no spent move is ever lost — but which
      procedure's solve observes exhaustion first depends on
      scheduling.  When bit-identical output across job counts matters,
      use per-task budgets (or no mid-run limits); see
      docs/ARCHITECTURE.md.

    {2 Per-request budgets (daemon mode)}

    A budget is a plain value with its own atomic counter — nothing
    here is process-global.  A long-running server therefore creates
    {e one budget per request} ([balign serve] does this through
    [align_checked ?deadline_ms]): two simultaneous requests with
    different deadlines own disjoint counters and disjoint absolute
    deadlines, so one request exhausting its allowance can never starve
    or time out another.  Sharing a single budget across requests would
    re-introduce exactly the cross-request interference this rules out;
    the two-deadline independence is pinned by the robustness suite
    (test_robust: "per-request budgets"). *)

type t = {
  started : float;  (** creation time, for elapsed-time reporting *)
  deadline : float option;  (** absolute wall-clock limit *)
  deadline_ms : int option;  (** the relative limit, for reporting *)
  max_moves : int option;
  moves : int Atomic.t;  (** global across every domain polling this budget *)
}

let create ?deadline_ms ?max_moves () =
  let started = Unix.gettimeofday () in
  {
    started;
    deadline =
      Option.map (fun ms -> started +. (float_of_int ms /. 1000.)) deadline_ms;
    deadline_ms;
    max_moves;
    moves = Atomic.make 0;
  }

(** A fresh budget with no limits ({!exhausted} is always false). *)
let unlimited () = create ()

(** [spend b] records one unit of solver work (an improving move);
    atomic and allocation-free. *)
let spend b = ignore (Atomic.fetch_and_add b.moves 1)

(** [exhausted b] is true once the deadline has passed or the move
    allowance is used up.  A zero deadline is exhausted immediately. *)
let exhausted b =
  (match b.max_moves with Some m -> Atomic.get b.moves >= m | None -> false)
  ||
  match b.deadline with
  | Some d -> Unix.gettimeofday () >= d
  | None -> false

(** Milliseconds since the budget was created. *)
let elapsed_ms b = (Unix.gettimeofday () -. b.started) *. 1000.

(** [remaining_ms b] is the wall-clock milliseconds left before the
    deadline (clamped at 0), or [None] for a deadline-free budget. *)
let remaining_ms b =
  Option.map
    (fun d -> Float.max 0. ((d -. Unix.gettimeofday ()) *. 1000.))
    b.deadline

(** [clamp_deadline ?cap requested] maps a client-requested deadline to
    the one a server should actually grant: [requested] bounded above
    by the server-side [cap] (either may be absent).  Negative requests
    are treated as 0 — an immediately-exhausted budget that degrades to
    the fallback chain rather than an error. *)
let clamp_deadline ?cap requested =
  let requested = Option.map (fun ms -> max 0 ms) requested in
  match (requested, cap) with
  | None, c -> c
  | (Some _ as r), None -> r
  | Some r, Some c -> Some (min r c)

(** Moves spent so far (all domains combined). *)
let moves b = Atomic.get b.moves

(** [timeout_error ?proc b] is the {!Errors.Solver_timeout} value
    describing an exhausted budget. *)
let timeout_error ?proc b =
  Errors.Solver_timeout
    {
      proc;
      elapsed_ms = elapsed_ms b;
      deadline_ms = b.deadline_ms;
      moves = Atomic.get b.moves;
    }
