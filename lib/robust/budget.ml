(** Solver budgets: a wall-clock deadline and/or a move allowance.

    A budget is created once per solve (or shared by a whole program's
    worth of solves) and threaded down into the inner local-search loops,
    which [spend] one unit per improving move and poll {!exhausted}
    between moves.  An exhausted budget never aborts a solve abruptly —
    the solver stops at the next poll and returns its best tour so far,
    flagging the result as degraded.

    [gettimeofday] is a vDSO call on every platform we target, so
    {!exhausted} polls the clock directly rather than amortizing; move
    spending is a plain increment. *)

type t = {
  started : float;  (** creation time, for elapsed-time reporting *)
  deadline : float option;  (** absolute wall-clock limit *)
  deadline_ms : int option;  (** the relative limit, for reporting *)
  max_moves : int option;
  mutable moves : int;
}

let create ?deadline_ms ?max_moves () =
  let started = Unix.gettimeofday () in
  {
    started;
    deadline =
      Option.map (fun ms -> started +. (float_of_int ms /. 1000.)) deadline_ms;
    deadline_ms;
    max_moves;
    moves = 0;
  }

(** A fresh budget with no limits ({!exhausted} is always false). *)
let unlimited () = create ()

(** [spend b] records one unit of solver work (an improving move). *)
let spend b = b.moves <- b.moves + 1

(** [exhausted b] is true once the deadline has passed or the move
    allowance is used up.  A zero deadline is exhausted immediately. *)
let exhausted b =
  (match b.max_moves with Some m -> b.moves >= m | None -> false)
  ||
  match b.deadline with
  | Some d -> Unix.gettimeofday () >= d
  | None -> false

(** Milliseconds since the budget was created. *)
let elapsed_ms b = (Unix.gettimeofday () -. b.started) *. 1000.

(** Moves spent so far. *)
let moves b = b.moves

(** [timeout_error ?proc b] is the {!Errors.Solver_timeout} value
    describing an exhausted budget. *)
let timeout_error ?proc b =
  Errors.Solver_timeout
    {
      proc;
      elapsed_ms = elapsed_ms b;
      deadline_ms = b.deadline_ms;
      moves = b.moves;
    }
