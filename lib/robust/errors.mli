(** Typed errors for the whole pipeline: every stage reports failures as
    values of {!t} (with procedure ids and context) instead of calling
    [exit]/[failwith].  Includes the documented exit-code mapping used by
    the CLI (see docs/ROBUSTNESS.md). *)

type t =
  | Parse_error of { stage : string; message : string }
      (** front-end failure; [stage] is one of lexer/parser/check/lower *)
  | Invalid_input of { tokens : (int * string) list }
      (** non-integer input tokens as [(byte offset, token)]; all of them *)
  | Invalid_cfg of { proc : int option; name : string option; reason : string }
  | Invalid_profile of {
      proc : int option;
      src : int option;
      dst : int option;
      reason : string;
    }
  | Profile_mismatch of {
      proc : int option;
      expected : int;
      got : int;
      what : string;
    }
  | Solver_timeout of {
      proc : int option;
      elapsed_ms : float;
      deadline_ms : int option;
      moves : int;
    }
  | Invalid_layout of { proc : int option; name : string option; reason : string }
  | Io_error of { path : string; reason : string }
  | Unknown_model of { requested : string; known : string list }
      (** a model name not in the {!Ba_machine.Model} registry; shares
          the CLI-misuse exit code *)
  | Usage of string
  | Internal of { where : string; reason : string }

exception Error of t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Documented process exit code of an error (docs/ROBUSTNESS.md). *)
val exit_code : t -> int

(** Convert an escaped exception into a typed error. *)
val of_exn : where:string -> exn -> t

(** Run a thunk, converting any escaped exception to [Error _]. *)
val catch : where:string -> (unit -> 'a) -> ('a, t) result
