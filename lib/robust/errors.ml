(** The typed error taxonomy of the whole pipeline.

    Every stage — front end, profiling, validation, reduction, solving,
    realization — reports failures as values of {!t} instead of calling
    [exit], [failwith] or raising ad-hoc exceptions.  Each constructor
    carries enough context (procedure ids, offending labels, budgets) for
    a caller to render a precise diagnostic or decide on a fallback.  The
    mapping to process exit codes used by [bin/balign] lives here too so
    that docs/ROBUSTNESS.md has a single source of truth. *)

type t =
  | Parse_error of { stage : string; message : string }
      (** front-end failure; [stage] is one of lexer/parser/check/lower *)
  | Invalid_input of { tokens : (int * string) list }
      (** non-integer workload input tokens as [(byte offset, token)],
          every offender reported *)
  | Invalid_cfg of { proc : int option; name : string option; reason : string }
      (** a CFG violates its structural invariants *)
  | Invalid_profile of {
      proc : int option;
      src : int option;
      dst : int option;
      reason : string;
    }  (** a profile entry is malformed (dangling label, bad count, …) *)
  | Profile_mismatch of {
      proc : int option;
      expected : int;
      got : int;
      what : string;
    }  (** profile shape disagrees with the program (proc/block counts) *)
  | Solver_timeout of {
      proc : int option;
      elapsed_ms : float;
      deadline_ms : int option;
      moves : int;
    }  (** the TSP solver exhausted its wall-clock or move budget *)
  | Invalid_layout of { proc : int option; name : string option; reason : string }
      (** a realized layout failed the semantic faithfulness check *)
  | Io_error of { path : string; reason : string }
  | Unknown_model of { requested : string; known : string list }
      (** a model name (CLI flag or serve request field) is not in the
          {!Ba_machine.Model} registry *)
  | Usage of string  (** mutually exclusive flags and similar CLI misuse *)
  | Internal of { where : string; reason : string }
      (** an unexpected exception, converted rather than propagated *)

exception Error of t

let pp ppf = function
  | Parse_error { stage; message } -> Fmt.pf ppf "%s: %s" stage message
  | Invalid_input { tokens } ->
      Fmt.pf ppf "invalid input token%s %a"
        (if List.length tokens > 1 then "s" else "")
        Fmt.(
          list ~sep:comma (fun ppf (off, tok) ->
              Fmt.pf ppf "%S at offset %d" tok off))
        tokens
  | Invalid_cfg { proc; name; reason } ->
      Fmt.pf ppf "invalid CFG%a%a: %s"
        Fmt.(option (fun ppf p -> Fmt.pf ppf " in procedure %d" p))
        proc
        Fmt.(option (fun ppf n -> Fmt.pf ppf " (%s)" n))
        name reason
  | Invalid_profile { proc; src; dst; reason } ->
      Fmt.pf ppf "invalid profile%a%a: %s"
        Fmt.(option (fun ppf p -> Fmt.pf ppf " in procedure %d" p))
        proc
        Fmt.(
          option (fun ppf s ->
              Fmt.pf ppf ", edge %d%a" s
                (option (fun ppf d -> Fmt.pf ppf "->%d" d))
                dst))
        (match src with None -> None | Some s -> Some s)
        reason
  | Profile_mismatch { proc; expected; got; what } ->
      Fmt.pf ppf "profile mismatch%a: expected %d %s, got %d"
        Fmt.(option (fun ppf p -> Fmt.pf ppf " in procedure %d" p))
        proc expected what got
  | Solver_timeout { proc; elapsed_ms; deadline_ms; moves } ->
      Fmt.pf ppf "solver budget exhausted%a after %.1f ms%a (%d moves)"
        Fmt.(option (fun ppf p -> Fmt.pf ppf " in procedure %d" p))
        proc elapsed_ms
        Fmt.(option (fun ppf d -> Fmt.pf ppf " (deadline %d ms)" d))
        deadline_ms moves
  | Invalid_layout { proc; name; reason } ->
      Fmt.pf ppf "unfaithful layout%a%a: %s"
        Fmt.(option (fun ppf p -> Fmt.pf ppf " in procedure %d" p))
        proc
        Fmt.(option (fun ppf n -> Fmt.pf ppf " (%s)" n))
        name reason
  | Io_error { path; reason } -> Fmt.pf ppf "%s: %s" path reason
  | Unknown_model { requested; known } ->
      (* non-breaking separator: this message travels in single-line
         wire payloads *)
      Fmt.pf ppf "unknown model %S (known: %s)" requested
        (String.concat ", " known)
  | Usage m -> Fmt.pf ppf "usage: %s" m
  | Internal { where; reason } -> Fmt.pf ppf "internal error in %s: %s" where reason

let to_string e = Fmt.str "%a" pp e

(** Documented process exit codes (see docs/ROBUSTNESS.md).  0 is
    success; 1 is reserved for untyped failures; 2 for CLI misuse;
    124/125 belong to Cmdliner. *)
let exit_code = function
  | Usage _ | Unknown_model _ -> 2
  | Parse_error _ -> 3
  | Invalid_input _ -> 4
  | Invalid_cfg _ -> 5
  | Invalid_profile _ | Profile_mismatch _ -> 6
  | Solver_timeout _ -> 7
  | Invalid_layout _ -> 8
  | Io_error _ -> 9
  | Internal _ -> 10

(** [of_exn where exn] converts an escaped exception into a typed error
    without losing the message. *)
let of_exn ~where = function
  | Error e -> e
  | Invalid_argument m | Failure m -> Internal { where; reason = m }
  | Sys_error m -> Io_error { path = where; reason = m }
  | e -> Internal { where; reason = Printexc.to_string e }

(** [catch ~where f] runs [f ()], converting any escaped exception into
    [Error (of_exn ~where exn)]. *)
let catch ~where f =
  match f () with
  | v -> Ok v
  | exception Stack_overflow ->
      Result.Error (Internal { where; reason = "stack overflow" })
  | exception e -> Result.Error (of_exn ~where e)
