(** Solver budgets: a wall-clock deadline and/or a move allowance,
    threaded into the local-search loops.  Exhaustion never aborts a
    solve — the solver stops at the next poll and returns its best tour
    so far, flagged as degraded. *)

type t

(** [create ?deadline_ms ?max_moves ()] starts the clock now.  With no
    limits the budget never exhausts; [deadline_ms = 0] is exhausted
    immediately. *)
val create : ?deadline_ms:int -> ?max_moves:int -> unit -> t

(** A fresh budget with no limits. *)
val unlimited : unit -> t

(** Record one unit of solver work (an improving move). *)
val spend : t -> unit

(** True once the deadline has passed or the move allowance is spent. *)
val exhausted : t -> bool

(** Milliseconds since the budget was created. *)
val elapsed_ms : t -> float

(** Moves spent so far. *)
val moves : t -> int

(** The {!Errors.Solver_timeout} value describing this budget's state. *)
val timeout_error : ?proc:int -> t -> Errors.t
