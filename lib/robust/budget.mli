(** Solver budgets: a wall-clock deadline and/or a move allowance,
    threaded into the local-search loops.  Exhaustion never aborts a
    solve — the solver stops at the next poll and returns its best tour
    so far, flagged as degraded.

    Budgets are domain-safe and may be shared by concurrent solves: the
    deadline is one absolute wall-clock instant observed by every
    domain, and the move counter is the global total across all of them
    (atomic increments; [max_moves] bounds the combined work).  Which
    solve observes exhaustion first under concurrency depends on
    scheduling — use per-task budgets when bit-identical output across
    job counts matters (see docs/ARCHITECTURE.md).

    Nothing here is process-global: each [create] owns its counter and
    deadline, so a server creates one budget {e per request} and two
    simultaneous requests with different deadlines cannot interfere
    (see the "Per-request budgets" section in the implementation and
    docs/SERVING.md). *)

type t

(** [create ?deadline_ms ?max_moves ()] starts the clock now.  With no
    limits the budget never exhausts; [deadline_ms = 0] is exhausted
    immediately. *)
val create : ?deadline_ms:int -> ?max_moves:int -> unit -> t

(** A fresh budget with no limits. *)
val unlimited : unit -> t

(** Record one unit of solver work (an improving move).  Atomic and
    allocation-free; safe from any domain. *)
val spend : t -> unit

(** True once the deadline has passed or the move allowance is spent. *)
val exhausted : t -> bool

(** Milliseconds since the budget was created. *)
val elapsed_ms : t -> float

(** Wall-clock milliseconds left before the deadline (clamped at 0), or
    [None] for a deadline-free budget. *)
val remaining_ms : t -> float option

(** [clamp_deadline ?cap requested] is the deadline a server grants a
    request: [requested] bounded above by the server-side [cap] (either
    may be absent; negative requests become 0, i.e. degrade
    immediately). *)
val clamp_deadline : ?cap:int -> int option -> int option

(** Moves spent so far, across every domain sharing this budget. *)
val moves : t -> int

(** The {!Errors.Solver_timeout} value describing this budget's state. *)
val timeout_error : ?proc:int -> t -> Errors.t
