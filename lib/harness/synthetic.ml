(** Synthetic procedure corpus for the appendix and ablation studies.

    The paper's bound-gap statistics are computed over the procedures of
    a whole benchmark (179 procedures in esp.tl).  Our minic workloads
    are single-digit procedure counts, so the corpus is topped up with
    randomly generated — but structurally CFG-shaped — procedures plus a
    random-walk profile, giving the gap statistics a comparable
    population.  Generation is deterministic per seed. *)

open Ba_cfg
module Profile = Ba_profile.Profile

(** [cfg rng ~n] builds a random valid CFG (same generator family as the
    test suite: forward-biased targets with occasional back edges). *)
let cfg rng ~n =
  let pick_target i =
    if Random.State.int rng 4 = 0 then Random.State.int rng n
    else min (n - 1) (i + 1 + Random.State.int rng (max 1 (n - i)))
  in
  let blocks =
    Array.init n (fun i ->
        let size = 1 + Random.State.int rng 12 in
        let term =
          if i = n - 1 then Block.Exit
          else
            match Random.State.int rng 10 with
            | 0 -> Block.Exit
            | 1 | 2 | 3 -> Block.Goto (pick_target i)
            | 4 | 5 | 6 | 7 | 8 ->
                Block.Branch { t = pick_target i; f = pick_target i }
            | _ ->
                Block.Multiway
                  (Array.init (2 + Random.State.int rng 3) (fun _ -> pick_target i))
        in
        Block.make ~id:i ~size term)
  in
  Cfg.make ~name:(Printf.sprintf "syn%d" n) ~entry:0 blocks

(** [profile rng g ~invocations ~max_steps] profiles random walks through
    [g] with skewed successor choice (hot paths exist, like real code). *)
let profile rng (g : Cfg.t) ~invocations ~max_steps : Profile.proc =
  let n = Cfg.n_blocks g in
  (* per-block fixed successor bias so the same branch leans the same way
     on every visit, like real branches do *)
  let bias = Array.init n (fun _ -> Random.State.int rng 100) in
  let counts = Array.init n (fun _ -> Hashtbl.create 4) in
  for _ = 1 to invocations do
    let cur = ref g.Cfg.entry and steps = ref 0 and stop = ref false in
    while not !stop do
      incr steps;
      let succs = Cfg.successors g !cur in
      if succs = [] || !steps >= max_steps then stop := true
      else begin
        let k = List.length succs in
        let pick =
          (* 85% of the time follow the block's biased favourite *)
          if Random.State.int rng 100 < 85 then bias.(!cur) mod k
          else Random.State.int rng k
        in
        let next = List.nth succs pick in
        let tbl = counts.(!cur) in
        Hashtbl.replace tbl next
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl next));
        cur := next
      end
    done
  done;
  {
    Profile.freqs =
      Array.map
        (fun tbl ->
          Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
          |> List.sort compare |> Array.of_list)
        counts;
  }

(** One synthetic alignment instance. *)
type instance = { name : string; g : Cfg.t; prof : Profile.proc }

(** [corpus ?seed ~sizes ~per_size ()] generates the instance corpus. *)
let corpus ?(seed = 97) ~(sizes : int list) ~per_size () : instance list =
  let rng = Random.State.make [| seed |] in
  List.concat_map
    (fun n ->
      List.init per_size (fun k ->
          let g = cfg rng ~n in
          let prof = profile rng g ~invocations:(40 + Random.State.int rng 60) ~max_steps:200 in
          { name = Printf.sprintf "syn-n%d-%d" n k; g; prof }))
    sizes

(** Instances from the real workloads: every procedure of every
    benchmark, profiled on its first data set. *)
let workload_instances () : instance list =
  List.concat_map
    (fun w ->
      let compiled = Ba_workloads.Workload.compile w in
      let ds = fst w.Ba_workloads.Workload.datasets in
      let prof =
        Ba_minic.Compile.profile compiled ~input:ds.Ba_workloads.Workload.input
      in
      Array.to_list
        (Array.mapi
           (fun fid g ->
             {
               name =
                 Printf.sprintf "%s.%s/%s" w.Ba_workloads.Workload.name
                   ds.Ba_workloads.Workload.ds_name
                   compiled.Ba_minic.Compile.names.(fid);
               g;
               prof = Profile.proc prof fid;
             })
           compiled.Ba_minic.Compile.cfgs))
    Ba_workloads.Workload.all
