(** Wall-clock stage timing for the Table 2 reproduction. *)

(** [time f] runs [f ()] and returns its result with elapsed seconds. *)
let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(** Stage timings of one benchmark compilation+alignment pipeline,
    mirroring the paper's Table 2 columns (see EXPERIMENTS.md for the
    mapping). *)
type stages = {
  mutable compile_s : float;  (** source → IR + CFG shapes *)
  mutable profile_s : float;  (** training profiling run *)
  mutable greedy_s : float;  (** greedy layout + realization *)
  mutable matrix_s : float;  (** DTSP matrix construction *)
  mutable solve_s : float;  (** DTSP solving *)
  mutable tsp_program_s : float;  (** tour → layout + realization *)
  mutable bounds_s : float;  (** Held–Karp lower bounds (analysis only) *)
}

let zero () =
  {
    compile_s = 0.;
    profile_s = 0.;
    greedy_s = 0.;
    matrix_s = 0.;
    solve_s = 0.;
    tsp_program_s = 0.;
    bounds_s = 0.;
  }
