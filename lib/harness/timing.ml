(** Wall-clock stage timing for the Table 2 reproduction.

    [stages] is immutable: every pipeline stage produces its own value
    and the caller combines them with the pure {!add}/{!merge} — there
    is no shared record for concurrent tasks to race on, so rows
    produced by a parallel runner carry exactly the timings of their
    own stages (merged after the join). *)

(** [time f] runs [f ()] and returns its result with elapsed seconds. *)
let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(** Stage timings of one benchmark compilation+alignment pipeline,
    mirroring the paper's Table 2 columns (see EXPERIMENTS.md for the
    mapping).  Immutable — combine with {!add}. *)
type stages = {
  compile_s : float;  (** source → IR + CFG shapes *)
  profile_s : float;  (** training profiling run *)
  greedy_s : float;  (** greedy layout + realization *)
  matrix_s : float;  (** DTSP matrix construction *)
  solve_s : float;  (** DTSP solving *)
  tsp_program_s : float;  (** tour → layout + realization *)
  bounds_s : float;  (** Held–Karp lower bounds (analysis only) *)
}

let zero =
  {
    compile_s = 0.;
    profile_s = 0.;
    greedy_s = 0.;
    matrix_s = 0.;
    solve_s = 0.;
    tsp_program_s = 0.;
    bounds_s = 0.;
  }

(** Pure component-wise sum: [add a b] is the combined timing of the
    two (sub-)pipelines. *)
let add a b =
  {
    compile_s = a.compile_s +. b.compile_s;
    profile_s = a.profile_s +. b.profile_s;
    greedy_s = a.greedy_s +. b.greedy_s;
    matrix_s = a.matrix_s +. b.matrix_s;
    solve_s = a.solve_s +. b.solve_s;
    tsp_program_s = a.tsp_program_s +. b.tsp_program_s;
    bounds_s = a.bounds_s +. b.bounds_s;
  }

(** [merge l] sums a list of per-task timings, in order. *)
let merge l = List.fold_left add zero l

(* ------------------------------------------------------------------ *)

(** A summary of a sample of per-task durations — enough to see the
    pool's load imbalance (one slow procedure dominating a domain). *)
type dist = {
  n : int;  (** sample count *)
  total_s : float;
  p50_s : float;  (** median *)
  p95_s : float;
  max_s : float;
}

let empty_dist = { n = 0; total_s = 0.; p50_s = 0.; p95_s = 0.; max_s = 0. }

(** [dist_of samples] summarizes a list of durations (seconds).
    Percentiles use the nearest-rank method on the sorted sample. *)
let dist_of = function
  | [] -> empty_dist
  | samples ->
      let a = Array.of_list samples in
      Array.sort compare a;
      let n = Array.length a in
      let rank p =
        let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
        a.(max 0 (min (n - 1) i))
      in
      {
        n;
        total_s = Array.fold_left ( +. ) 0. a;
        p50_s = rank 0.50;
        p95_s = rank 0.95;
        max_s = a.(n - 1);
      }
