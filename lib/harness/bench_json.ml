(** Machine-readable bench trajectory.

    [balign bench --json FILE] emits one self-describing document per
    run so CI can chart penalty/gap/latency over commits:

    {v
    { "commit": "<sha>", "date": "<ISO-8601 UTC>", "model": "<name>",
      "rows": [ { "bench": ..., "dataset": ...,
                  "penalty_cycles": ..., "hk_gap": ...,
                  "objectives": { "tsp":    { "penalty": ..., "ext_tsp": ... },
                                  "calder": { ... }, "greedy": { ... },
                                  "btfnt":  { ... }, "tsp_static": { ... },
                                  "greedy_static": { ... } },
                  "wall_ms": ..., "p50_ms": ..., "p95_ms": ...,
                  "jobs": ..., "certs": ..., "cert_failures": ... }, ... ] }
    v}

    [penalty_cycles] and [hk_gap] are deterministic (self-trained TSP
    layout vs the Held–Karp bound); [objectives] reports both cost
    objectives — control-penalty cycles (lower is better) and the
    Ext-TSP locality score (higher is better) — for every self-trained
    aligner and for the two static-estimate-trained layouts
    ([tsp_static], [greedy_static]: no training run at all);
    [certs]/[cert_failures] count the independent alignment
    certificates of the row ({!Ba_check.Certify}); the [*_ms] fields
    are wall-clock and vary run to run.  Document construction is pure
    ({!make}) so tests can golden-check the deterministic slice. *)

module Json = Ba_obs.Json
module Task = Ba_engine.Task

(** Gap of the self-trained TSP penalty to the Held–Karp lower bound,
    as a fraction of the bound (0 when the bound is degenerate). *)
let hk_gap (r : Runner.row) =
  if r.Runner.lower_bound <= 0 then 0.
  else
    Float.max 0.
      (float_of_int (r.Runner.tsp_self.Runner.penalty - r.Runner.lower_bound)
      /. float_of_int r.Runner.lower_bound)

(** Both objectives of one self-trained layout. *)
let objective_json (m : Runner.measurement) : Json.t =
  Json.Obj
    [
      ("penalty", Json.Int m.Runner.penalty);
      ("ext_tsp", Json.Int m.Runner.ext_tsp);
    ]

let objectives_json (r : Runner.row) : Json.t =
  Json.Obj
    [
      ("tsp", objective_json r.Runner.tsp_self);
      ("calder", objective_json r.Runner.calder_self);
      ("greedy", objective_json r.Runner.greedy_self);
      ("btfnt", objective_json r.Runner.btfnt_self);
      ("tsp_static", objective_json r.Runner.tsp_static);
      ("greedy_static", objective_json r.Runner.greedy_static);
    ]

let row_json ~jobs (o : Runner.row Task.outcome) : Json.t =
  let r = o.Task.value in
  Json.Obj
    [
      ("bench", Json.String r.Runner.bench);
      ("dataset", Json.String r.Runner.ds);
      ("penalty_cycles", Json.Int r.Runner.tsp_self.Runner.penalty);
      ("hk_gap", Json.Float (hk_gap r));
      ("objectives", objectives_json r);
      ("wall_ms", Json.Float (o.Task.elapsed_s *. 1000.));
      ("p50_ms", Json.Float (r.Runner.solve_dist.Timing.p50_s *. 1000.));
      ("p95_ms", Json.Float (r.Runner.solve_dist.Timing.p95_s *. 1000.));
      ("jobs", Json.Int jobs);
      ("certs", Json.Int r.Runner.certs);
      ("cert_failures", Json.Int r.Runner.cert_failures);
    ]

(** Per-representation 3-Opt throughput split, read from the process
    metrics registry: for each tour representation, the improving moves
    it applied, the time {!Ba_tsp.Three_opt.run} spent on it, and the
    resulting moves/s (0 when that representation never ran).  The move
    counts are deterministic; the times and rates are wall-clock. *)
let solver_split () : Json.t =
  let one moves_c ns_c =
    let moves = Ba_obs.Metrics.get moves_c in
    let run_s = float_of_int (Ba_obs.Metrics.get ns_c) /. 1e9 in
    Json.Obj
      [
        ("moves", Json.Int moves);
        ("run_s", Json.Float run_s);
        ( "moves_per_s",
          Json.Float (if run_s > 0. then float_of_int moves /. run_s else 0.)
        );
      ]
  in
  Json.Obj
    [
      ("array", one Ba_obs.Metrics.Moves_array_repr Ba_obs.Metrics.Run_ns_array_repr);
      ( "two_level",
        one Ba_obs.Metrics.Moves_two_level_repr
          Ba_obs.Metrics.Run_ns_two_level_repr );
      ("segment_splits", Json.Int (Ba_obs.Metrics.get Ba_obs.Metrics.Segment_splits));
      ( "segment_rebalances",
        Json.Int (Ba_obs.Metrics.get Ba_obs.Metrics.Segment_rebalances) );
    ]

(** [make ?model ?solver ~commit ~date ~jobs outcomes] builds the
    document; pure.  [model] names the cost model the rows were
    measured under (default: the registry default); [solver], when
    given, lands verbatim as the per-representation solver split
    ({!solver_split}). *)
let make ?(model = Ba_machine.Model.default) ?solver ~commit ~date ~jobs
    (outcomes : Runner.row Task.outcome list) : Json.t =
  Json.Obj
    ([
       ("commit", Json.String commit);
       ("date", Json.String date);
       ("model", Json.String (Ba_machine.Model.to_string model));
     ]
    @ (match solver with None -> [] | Some s -> [ ("solver", s) ])
    @ [ ("rows", Json.List (List.map (row_json ~jobs) outcomes)) ])

(** Best-effort current commit id: [$BALIGN_COMMIT] if set (CI), else
    [git rev-parse HEAD], else ["unknown"]. *)
let current_commit () =
  match Sys.getenv_opt "BALIGN_COMMIT" with
  | Some c when String.trim c <> "" -> String.trim c
  | _ -> (
      try
        let ic =
          Unix.open_process_in "git rev-parse HEAD 2>/dev/null"
        in
        let line = try input_line ic with End_of_file -> "" in
        let status = Unix.close_process_in ic in
        match (status, String.trim line) with
        | Unix.WEXITED 0, sha when sha <> "" -> sha
        | _ -> "unknown"
      with _ -> "unknown")

(** Current time as ISO-8601 UTC, e.g. ["2026-08-06T12:34:56Z"]. *)
let now_utc () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(** [write ?model path ~jobs outcomes] stamps and writes the document,
    including the solver split of this process's run. *)
let write ?model path ~jobs outcomes =
  Json.write_file path
    (make ?model ~solver:(solver_split ()) ~commit:(current_commit ())
       ~date:(now_utc ()) ~jobs outcomes)
