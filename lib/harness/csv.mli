(** CSV export of the experiment results, for external plotting. *)

(** Full measurement set, one line per benchmark/data-set pair.
    Deterministic: no wall-clock columns, diffs clean across job
    counts. *)
val rows_csv : Runner.row list -> string list

(** Per-stage seconds plus the per-procedure TSP solve-time
    distribution (p50/p95/max).  Run-dependent by nature; kept out of
    {!rows_csv} so determinism checks can diff that alone. *)
val timing_csv : Runner.row list -> string list

(** Per-instance bound study. *)
val appendix_csv : Appendix.stats -> string list

(** Write the deterministic CSV files under [dir]; returns the paths
    written. *)
val export :
  dir:string ->
  rows:Runner.row list ->
  rows95:Runner.row list ->
  appendix:Appendix.stats option ->
  string list

(** Write the run-dependent timing CSVs under [dir]; returns the paths
    written. *)
val export_timings :
  dir:string -> rows:Runner.row list -> rows95:Runner.row list -> string list
