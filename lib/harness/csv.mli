(** CSV export of the experiment results, for external plotting. *)

(** Full measurement set, one line per benchmark/data-set pair. *)
val rows_csv : Runner.row list -> string list

(** Per-instance bound study. *)
val appendix_csv : Appendix.stats -> string list

(** Write all CSV files under [dir]; returns the paths written. *)
val export :
  dir:string ->
  rows:Runner.row list ->
  rows95:Runner.row list ->
  appendix:Appendix.stats option ->
  string list
