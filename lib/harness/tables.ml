(** Table and figure printers: each function regenerates one table or
    figure of the paper from measured rows (same rows/series, our
    numbers).  Output is plain text so `bench/main.exe | tee` archives
    cleanly. *)

let hr ppf = Fmt.pf ppf "%s@." (String.make 78 '-')

let section ppf title =
  Fmt.pf ppf "@.";
  hr ppf;
  Fmt.pf ppf "%s@." title;
  hr ppf

(* ------------------------------------------------------------------ *)

(** Table 1: benchmark and data-set inventory. *)
let table1 ppf (rows : Runner.row list) =
  section ppf "Table 1: benchmarks and data sets";
  Fmt.pf ppf "%-6s %-4s %-6s %-7s %-7s %-8s %-10s@." "bench" "ds" "procs"
    "blocks" "sites" "touched" "exec-branches";
  List.iter
    (fun (r : Runner.row) ->
      Fmt.pf ppf "%-6s %-4s %-6d %-7d %-7d %-8d %-10d@." r.Runner.bench
        r.Runner.ds r.Runner.n_procs r.Runner.n_blocks r.Runner.branch_sites
        r.Runner.branch_sites_touched r.Runner.executed_branches)
    rows

(** Table 2: per-stage wall-clock times, for the slower data set of each
    benchmark (the paper reports "the worst data set for each
    benchmark"). *)
let table2 ppf (rows : Runner.row list) =
  section ppf "Table 2: compilation and alignment times (seconds, worst data set)";
  Fmt.pf ppf "%-6s %-4s %8s %8s %8s %8s %8s %8s %8s@." "bench" "ds" "compile"
    "profile" "greedy" "matrix" "solve" "tsp-prog" "hk-bound";
  let by_bench = Hashtbl.create 8 in
  List.iter
    (fun (r : Runner.row) ->
      match Hashtbl.find_opt by_bench r.Runner.bench with
      | Some (prev : Runner.row)
        when prev.Runner.stages.Timing.solve_s >= r.Runner.stages.Timing.solve_s
        ->
          ()
      | _ -> Hashtbl.replace by_bench r.Runner.bench r)
    rows;
  List.iter
    (fun (r : Runner.row) ->
      match Hashtbl.find_opt by_bench r.Runner.bench with
      | Some chosen when chosen == r ->
          let s = r.Runner.stages in
          Fmt.pf ppf "%-6s %-4s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f@."
            r.Runner.bench r.Runner.ds s.Timing.compile_s s.Timing.profile_s
            s.Timing.greedy_s s.Timing.matrix_s s.Timing.solve_s
            s.Timing.tsp_program_s s.Timing.bounds_s
      | _ -> ())
    rows

(** Table 3: the control-penalty machine model. *)
let table3 ppf (p : Ba_machine.Penalties.t) =
  section ppf "Table 3: control penalties of the machine model";
  Fmt.pf ppf "%-55s %-8s %s@." "block-ending control event" "cycles" "term";
  List.iter
    (fun (event, cycles, term) -> Fmt.pf ppf "%-55s %-8d %s@." event cycles term)
    (Ba_machine.Penalties.table_rows p)

(** Table 4: original-layout penalties, lower bounds and running times. *)
let table4 ppf (rows : Runner.row list) =
  section ppf "Table 4: original control penalties, lower bounds, running times";
  Fmt.pf ppf "%-6s %-4s %14s %14s %14s@." "bench" "ds" "orig-penalty"
    "lower-bound" "orig-cycles";
  List.iter
    (fun (r : Runner.row) ->
      Fmt.pf ppf "%-6s %-4s %14d %14d %14d@." r.Runner.bench r.Runner.ds
        r.Runner.original.Runner.penalty r.Runner.lower_bound
        r.Runner.original.Runner.cycles)
    rows

(* ------------------------------------------------------------------ *)

let bar width ratio =
  (* ratio in [0, ~1.2]: draw a crude horizontal bar *)
  let r = if Float.is_nan ratio then 0.0 else Float.max 0.0 (Float.min 1.25 ratio) in
  let n = int_of_float (r *. float_of_int width) in
  String.make (min n (width + width / 4)) '#'

let ratio a b = if b = 0 then 1.0 else float_of_int a /. float_of_int b

let mean l =
  match l with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

(** Figure 2 (left): control penalties normalized to the original layout,
    training = testing. *)
let fig2_penalties ppf (rows : Runner.row list) =
  section ppf
    "Figure 2 (left): control penalties, train = test (normalized to original)";
  Fmt.pf ppf "%-9s %8s %8s %8s   %s@." "bench.ds" "greedy" "tsp" "bound"
    "bars: greedy '#', tsp '+', bound '.'";
  let g_all = ref [] and t_all = ref [] and b_all = ref [] in
  List.iter
    (fun (r : Runner.row) ->
      let orig = r.Runner.original.Runner.penalty in
      let g = ratio r.Runner.greedy_self.Runner.penalty orig in
      let t = ratio r.Runner.tsp_self.Runner.penalty orig in
      let b = ratio r.Runner.lower_bound orig in
      g_all := g :: !g_all;
      t_all := t :: !t_all;
      b_all := b :: !b_all;
      Fmt.pf ppf "%-9s %8.3f %8.3f %8.3f   |%-26s@."
        (r.Runner.bench ^ "." ^ r.Runner.ds)
        g t b (bar 24 g);
      Fmt.pf ppf "%-9s %8s %8s %8s   |%-26s@." "" "" "" ""
        (String.map (fun c -> if c = '#' then '+' else c) (bar 24 t));
      Fmt.pf ppf "%-9s %8s %8s %8s   |%-26s@." "" "" "" ""
        (String.map (fun c -> if c = '#' then '.' else c) (bar 24 b)))
    rows;
  Fmt.pf ppf "%-9s %8.3f %8.3f %8.3f   (means; paper: 0.67 / 0.64 / 0.64)@."
    "MEAN" (mean !g_all) (mean !t_all) (mean !b_all)

(** Figure 2 (right): execution times normalized to the original layout,
    training = testing. *)
let fig2_times ppf (rows : Runner.row list) =
  section ppf
    "Figure 2 (right): execution times, train = test (normalized to original)";
  Fmt.pf ppf "%-9s %8s %8s@." "bench.ds" "greedy" "tsp";
  let g_all = ref [] and t_all = ref [] in
  List.iter
    (fun (r : Runner.row) ->
      let orig = r.Runner.original.Runner.cycles in
      let g = ratio r.Runner.greedy_self.Runner.cycles orig in
      let t = ratio r.Runner.tsp_self.Runner.cycles orig in
      g_all := g :: !g_all;
      t_all := t :: !t_all;
      Fmt.pf ppf "%-9s %8.4f %8.4f@." (r.Runner.bench ^ "." ^ r.Runner.ds) g t)
    rows;
  Fmt.pf ppf "%-9s %8.4f %8.4f   (means; paper: 0.9881 / 0.9799)@." "MEAN"
    (mean !g_all) (mean !t_all)

(** Figure 3 (upper): cross-validated control penalties. *)
let fig3_penalties ppf (rows : Runner.row list) =
  section ppf
    "Figure 3 (upper): control penalties, cross-validated (normalized to original)";
  Fmt.pf ppf "%-9s %5s %12s %12s %12s %12s@." "bench.ds" "train" "greedy-self"
    "greedy-cross" "tsp-self" "tsp-cross";
  let gs = ref [] and gc = ref [] and ts = ref [] and tc = ref [] in
  List.iter
    (fun (r : Runner.row) ->
      let orig = r.Runner.original.Runner.penalty in
      let v m = ratio m.Runner.penalty orig in
      gs := v r.Runner.greedy_self :: !gs;
      gc := v r.Runner.greedy_cross :: !gc;
      ts := v r.Runner.tsp_self :: !ts;
      tc := v r.Runner.tsp_cross :: !tc;
      Fmt.pf ppf "%-9s %5s %12.3f %12.3f %12.3f %12.3f@."
        (r.Runner.bench ^ "." ^ r.Runner.ds)
        r.Runner.train_ds
        (v r.Runner.greedy_self) (v r.Runner.greedy_cross) (v r.Runner.tsp_self)
        (v r.Runner.tsp_cross))
    rows;
  Fmt.pf ppf "%-9s %5s %12.3f %12.3f %12.3f %12.3f   (means; paper: 0.67/0.69/0.64/0.66)@."
    "MEAN" "" (mean !gs) (mean !gc) (mean !ts) (mean !tc)

(** Figure 3 (lower): cross-validated execution times. *)
let fig3_times ppf (rows : Runner.row list) =
  section ppf
    "Figure 3 (lower): execution times, cross-validated (normalized to original)";
  Fmt.pf ppf "%-9s %5s %12s %12s %12s %12s@." "bench.ds" "train" "greedy-self"
    "greedy-cross" "tsp-self" "tsp-cross";
  let gs = ref [] and gc = ref [] and ts = ref [] and tc = ref [] in
  List.iter
    (fun (r : Runner.row) ->
      let orig = r.Runner.original.Runner.cycles in
      let v (m : Runner.measurement) = ratio m.Runner.cycles orig in
      gs := v r.Runner.greedy_self :: !gs;
      gc := v r.Runner.greedy_cross :: !gc;
      ts := v r.Runner.tsp_self :: !ts;
      tc := v r.Runner.tsp_cross :: !tc;
      Fmt.pf ppf "%-9s %5s %12.4f %12.4f %12.4f %12.4f@."
        (r.Runner.bench ^ "." ^ r.Runner.ds)
        r.Runner.train_ds
        (v r.Runner.greedy_self) (v r.Runner.greedy_cross) (v r.Runner.tsp_self)
        (v r.Runner.tsp_cross))
    rows;
  Fmt.pf ppf
    "%-9s %5s %12.4f %12.4f %12.4f %12.4f   (means; paper: 0.9881/0.9894/0.9799/0.9834)@."
    "MEAN" "" (mean !gs) (mean !gc) (mean !ts) (mean !tc)

(* ------------------------------------------------------------------ *)

(** Static-estimate recovery: how much of the penalty reduction a
    collected profile buys is recovered by training on the
    {!Ba_analysis.Estimate} structural profile instead.  [recovered] is
    [(orig - static) / (orig - self)] — 1.0 means the static layout is
    as good as the profile-trained one, 0.0 means it is no better than
    the original, negative means it made things worse. *)
let static_recovery ppf (rows : Runner.row list) =
  section ppf
    "Static estimation: penalty recovered without a training run (vs original)";
  Fmt.pf ppf "%-9s %12s %12s %12s %12s %12s %12s@." "bench.ds" "orig"
    "tsp-self" "tsp-static" "recovered" "greedy-self" "g-recovered";
  let recovered orig self static =
    if orig <= self then 0.0
    else float_of_int (orig - static) /. float_of_int (orig - self)
  in
  let rt = ref [] and rg = ref [] in
  List.iter
    (fun (r : Runner.row) ->
      let orig = r.Runner.original.Runner.penalty in
      let ts = r.Runner.tsp_self.Runner.penalty
      and tst = r.Runner.tsp_static.Runner.penalty
      and gs = r.Runner.greedy_self.Runner.penalty
      and gst = r.Runner.greedy_static.Runner.penalty in
      let rec_t = recovered orig ts tst and rec_g = recovered orig gs gst in
      rt := rec_t :: !rt;
      rg := rec_g :: !rg;
      Fmt.pf ppf "%-9s %12d %12d %12d %12.3f %12d %12.3f@."
        (r.Runner.bench ^ "." ^ r.Runner.ds)
        orig ts tst rec_t gs rec_g)
    rows;
  Fmt.pf ppf "%-9s %12s %12s %12s %12.3f %12s %12.3f   (means)@." "MEAN" "" ""
    "" (mean !rt) "" (mean !rg)

(* ------------------------------------------------------------------ *)

(** Appendix: bound-quality and solver-reliability statistics. *)
let appendix ppf (s : Appendix.stats) =
  section ppf "Appendix: AP / Held-Karp bound quality, iterated 3-Opt reliability";
  Fmt.pf ppf "instances: %d (%d small enough to solve exactly)@."
    (List.length s.Appendix.instances)
    s.Appendix.n_proven;
  Fmt.pf ppf "AP bound exact on %d/%d proven instances@." s.Appendix.n_ap_exact
    s.Appendix.n_proven;
  Fmt.pf ppf "median AP gap on the rest: %.1f%%  (paper: 30%% median on esp.tl)@."
    s.Appendix.median_ap_gap_pct;
  Fmt.pf ppf "worst opt/AP ratio: %.1fx  (paper: >10x on 15 instances)@."
    s.Appendix.max_ap_ratio;
  Fmt.pf ppf "Held-Karp gap to best tour: mean %.2f%%, max %.2f%%  (paper: <0.3%% avg, 0.9%% max program-level)@."
    s.Appendix.mean_hk_gap_pct s.Appendix.max_hk_gap_pct;
  Fmt.pf ppf "all solver runs found the best tour on %d/%d instances  (paper: 128/179 on esp.tl)@."
    s.Appendix.all_runs_found_best
    (List.length s.Appendix.instances);
  Fmt.pf ppf
    "AP-patching heuristic [Karp]: %.1f%% above 3-Opt on average, optimal-or-tied on %d/%d@."
    s.Appendix.mean_patching_excess_pct s.Appendix.patching_wins_or_ties
    (List.length s.Appendix.instances);
  Fmt.pf ppf "@.%-18s %7s %12s %12s %12s %12s %12s %6s@." "instance" "cities"
    "tour" "opt" "AP" "HK" "patching" "best";
  List.iter
    (fun (r : Appendix.per_instance) ->
      Fmt.pf ppf "%-18s %7d %12d %12s %12d %12d %12d %3d/%d@." r.Appendix.name
        r.Appendix.n_cities r.Appendix.tour_cost
        (match r.Appendix.opt with Some o -> string_of_int o | None -> "-")
        r.Appendix.ap r.Appendix.hk r.Appendix.patching r.Appendix.runs_with_best
        r.Appendix.runs)
    s.Appendix.instances

(** Headline summary: the paper's main claims, checked against measured
    numbers. *)
let summary ppf (rows : Runner.row list) =
  section ppf "Summary: the paper's claims vs this reproduction";
  let orig_p = List.map (fun (r : Runner.row) -> r.Runner.original.Runner.penalty) rows in
  let f sel = List.map sel rows in
  let rel sel =
    1.0
    -. mean
         (List.map2
            (fun o v -> ratio v o)
            orig_p
            (f sel))
  in
  let removed_g = rel (fun r -> r.Runner.greedy_self.Runner.penalty) in
  let removed_t = rel (fun r -> r.Runner.tsp_self.Runner.penalty) in
  let removed_b = rel (fun r -> r.Runner.lower_bound) in
  Fmt.pf ppf "control penalty removed (mean): greedy %.1f%%, tsp %.1f%%, bound %.1f%% (paper: 33 / 36 / 36)@."
    (100. *. removed_g) (100. *. removed_t) (100. *. removed_b);
  let time_g =
    1.0 -. mean (List.map (fun (r : Runner.row) -> ratio r.Runner.greedy_self.Runner.cycles r.Runner.original.Runner.cycles) rows)
  in
  let time_t =
    1.0 -. mean (List.map (fun (r : Runner.row) -> ratio r.Runner.tsp_self.Runner.cycles r.Runner.original.Runner.cycles) rows)
  in
  Fmt.pf ppf "execution time improved (mean): greedy %.2f%%, tsp %.2f%% (paper: 1.19 / 2.01)@."
    (100. *. time_g) (100. *. time_t);
  let gap =
    mean
      (List.map
         (fun (r : Runner.row) ->
           if r.Runner.tsp_self.Runner.penalty = 0 then 0.0
           else
             100.
             *. float_of_int (r.Runner.tsp_self.Runner.penalty - r.Runner.lower_bound)
             /. float_of_int r.Runner.tsp_self.Runner.penalty)
         rows)
  in
  Fmt.pf ppf "tsp layouts above the lower bound by %.2f%% on average (paper: ~0.3%%)@." gap;
  let exact = List.fold_left (fun acc (r : Runner.row) -> acc + r.Runner.tsp_exact_procs) 0 rows in
  Fmt.pf ppf "procedures solved to proven optimality: %d@." exact
