(** Machine-readable bench trajectory ([balign bench --json FILE]):
    [{commit, date, model, rows: [{bench, dataset, penalty_cycles,
    hk_gap, objectives, wall_ms, p50_ms, p95_ms, jobs}]}] where
    [objectives] carries both cost objectives (control-penalty cycles
    and the Ext-TSP locality score) for every self-trained aligner
    (tsp, calder, greedy, btfnt).  {!make} is pure so tests can
    golden-check the deterministic slice. *)

(** Gap of the self-trained TSP penalty to the Held–Karp lower bound,
    as a fraction of the bound (0 when the bound is degenerate). *)
val hk_gap : Runner.row -> float

(** Per-representation 3-Opt throughput split ([{array, two_level:
    {moves, run_s, moves_per_s}, segment_splits, segment_rebalances}])
    read from the process metrics registry; moves are deterministic,
    times and rates are wall-clock. *)
val solver_split : unit -> Ba_obs.Json.t

(** [make ?model ?solver ~commit ~date ~jobs outcomes] builds the
    document; pure.  [model] names the cost model the rows were
    measured under; [solver] (e.g. {!solver_split}) is embedded
    verbatim when given. *)
val make :
  ?model:Ba_machine.Model.t ->
  ?solver:Ba_obs.Json.t ->
  commit:string ->
  date:string ->
  jobs:int ->
  Runner.row Ba_engine.Task.outcome list ->
  Ba_obs.Json.t

(** Best-effort current commit id: [$BALIGN_COMMIT] if set (CI), else
    [git rev-parse HEAD], else ["unknown"]. *)
val current_commit : unit -> string

(** Current time as ISO-8601 UTC, e.g. ["2026-08-06T12:34:56Z"]. *)
val now_utc : unit -> string

(** [write ?model path ~jobs outcomes] stamps and writes the
    document. *)
val write :
  ?model:Ba_machine.Model.t ->
  string ->
  jobs:int ->
  Runner.row Ba_engine.Task.outcome list ->
  unit
