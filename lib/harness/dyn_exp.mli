(** Extension experiment: branch alignment under dynamic branch
    prediction hardware (the paper's future-work footnote 6). *)

module W = Ba_workloads.Workload

type row = {
  bench : string;
  ds : string;
  static_ : int * int * int;  (** original, greedy, tsp penalties *)
  dynamic : int * int * int;
  dynamic_mispredicts : int * int * int;
}

val run_one : ?config:Ba_machine.Predictor.config -> W.t -> test:W.dataset -> row
val run_all : ?config:Ba_machine.Predictor.config -> unit -> row list
val print : Format.formatter -> row list -> unit
