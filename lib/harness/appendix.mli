(** The appendix experiment: quality of the AP and Held–Karp lower
    bounds, Karp-patching comparison, and iterated 3-Opt reliability
    over a corpus of branch-alignment DTSP instances. *)

type per_instance = {
  name : string;
  n_cities : int;
  tour_cost : int;  (** best tour found (exact when [opt] is set) *)
  opt : int option;  (** proven optimum, small instances only *)
  ap : int;
  hk : int;
  patching : int;  (** Karp's AP-patching heuristic *)
  runs_with_best : int;
  runs : int;
}

type stats = {
  instances : per_instance list;
  n_ap_exact : int;
  n_proven : int;
  median_ap_gap_pct : float;
  max_ap_ratio : float;
  mean_hk_gap_pct : float;
  max_hk_gap_pct : float;
  all_runs_found_best : int;
  mean_patching_excess_pct : float;
  patching_wins_or_ties : int;
}

(** Run the bound study over the given instances. *)
val study :
  ?config:Ba_tsp.Iterated.config ->
  ?model:Ba_machine.Model.t ->
  Synthetic.instance list ->
  stats
