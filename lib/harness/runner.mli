(** The experiment engine: everything Figures 2–3 and Tables 1, 2 and 4
    need, for one benchmark × data set (self-trained and cross-validated
    layouts, analytic penalties, simulated cycles, lower bounds, stage
    timings).  Rows are independent tasks: {!run_all} fans them out
    over a pluggable executor and merges them back in suite order, so
    the measured numbers are identical at any job count. *)

module Workload = Ba_workloads.Workload

type measurement = {
  penalty : int;  (** analytic control-penalty cycles on the testing set *)
  cycles : int;  (** simulated execution cycles on the testing set *)
  icache_misses : int;
  ext_tsp : int;
      (** Ext-TSP locality score of the same layout on the testing set
          (higher is better) *)
}

type row = {
  bench : string;
  ds : string;  (** testing data set *)
  train_ds : string;  (** sibling set used for cross-validation *)
  n_procs : int;
  n_blocks : int;
  branch_sites : int;
  branch_sites_touched : int;
  executed_branches : int;
  original : measurement;
  greedy_self : measurement;
  calder_self : measurement;  (** cost-model greedy ({!Ba_align.Calder}) *)
  btfnt_self : measurement;  (** static BTFNT chaining ({!Ba_align.Btfnt}) *)
  tsp_self : measurement;
  greedy_cross : measurement;
  tsp_cross : measurement;
  greedy_static : measurement;
      (** greedy layout trained on the {!Ba_analysis.Estimate} static
          profile (no training run at all), measured on the testing set *)
  tsp_static : measurement;
      (** TSP layout trained on the static estimate, measured on the
          testing set *)
  lower_bound : int;
  tsp_exact_procs : int;  (** procedures solved to proven optimality *)
  tsp_timeouts : int;
      (** self-trained procedures whose TSP solve hit the budget *)
  certs : int;
      (** alignment certificates issued ({!Ba_check.Certify}, all seven
          programs of the row) *)
  cert_failures : int;  (** certificates that failed re-verification *)
  stages : Timing.stages;
  solve_dist : Timing.dist;
      (** distribution of self-trained per-procedure TSP solve times *)
}

type config = {
  model : Ba_machine.Model.t;  (** cost model every stage runs under *)
  tsp : Ba_align.Tsp_align.config;
  cycles : Ba_machine.Cycles.config;
  hk : Ba_tsp.Held_karp.config;
}

val default : config

(** Run the full experiment for one benchmark on one testing data set.
    Pure up to the wall clock: safe to run concurrently with other
    benchmarks.  [spans] (default: disabled) receives one span per
    pipeline phase when tracing is on. *)
val run_benchmark :
  ?config:config ->
  ?spans:Ba_obs.Span.buf ->
  Workload.t ->
  test:Workload.dataset ->
  row

(** Run the experiment over a whole suite (default: the SPEC92
    stand-ins; pass [Ba_workloads.Workload95.all] for the extension
    suite), fanning rows out over [executor] (default sequential).
    Outcomes come back in suite order with per-task wall clock and
    spans attached. *)
val run_all_outcomes :
  ?config:config ->
  ?executor:Ba_engine.Executor.t ->
  ?workloads:Workload.t list ->
  unit ->
  row Ba_engine.Task.outcome list

(** {!run_all_outcomes} stripped down to the rows. *)
val run_all :
  ?config:config ->
  ?executor:Ba_engine.Executor.t ->
  ?workloads:Workload.t list ->
  unit ->
  row list
