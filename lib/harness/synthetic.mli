(** Synthetic procedure corpus for the appendix and ablation studies:
    random but structurally CFG-shaped procedures with skewed
    random-walk profiles, plus instances extracted from the real
    workloads.  Deterministic per seed. *)

open Ba_cfg
module Profile = Ba_profile.Profile

(** Random valid CFG with [n] blocks. *)
val cfg : Random.State.t -> n:int -> Cfg.t

(** Skewed random-walk profile of a CFG. *)
val profile :
  Random.State.t -> Cfg.t -> invocations:int -> max_steps:int -> Profile.proc

type instance = { name : string; g : Cfg.t; prof : Profile.proc }

(** [corpus ~sizes ~per_size ()] generates the synthetic corpus. *)
val corpus : ?seed:int -> sizes:int list -> per_size:int -> unit -> instance list

(** Every procedure of every SPEC92 workload, profiled on its first data
    set. *)
val workload_instances : unit -> instance list
