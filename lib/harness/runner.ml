(** The experiment engine: everything Figures 2–3 and Tables 1, 2 and 4
    need, for one benchmark × data set.

    For each benchmark and {e testing} data set the runner produces:
    - Table 1 statistics (branch sites touched, executed branches);
    - original / greedy / TSP layouts trained on the testing set itself
      ("self", the paper's Section 4.1 setting) and on the sibling data
      set ("cross", Section 4.2);
    - analytic control penalties for all of those plus the Held–Karp
      lower bound;
    - full-machine simulated cycle counts (penalties + I-cache) for the
      original, greedy and TSP programs under both training regimes;
    - per-stage wall-clock timings (Table 2) and the distribution of
      per-procedure TSP solve times (pool load-imbalance view).

    Every benchmark × data-set row is an independent {!Ba_engine.Task}:
    {!run_all} fans rows out over a pluggable executor and merges them
    back in suite order, so the measured numbers are identical at any
    job count (timings, of course, are whatever the wall clock says). *)

open Ba_align
module Workload = Ba_workloads.Workload
module Profile = Ba_profile.Profile
module Cycles = Ba_machine.Cycles
module Executor = Ba_engine.Executor
module Task = Ba_engine.Task

type measurement = {
  penalty : int;  (** analytic control-penalty cycles on the testing set *)
  cycles : int;  (** simulated execution cycles on the testing set *)
  icache_misses : int;
  ext_tsp : int;
      (** Ext-TSP locality score of the same layout on the testing set
          (higher is better); scored with the model's Ext-TSP
          parameters, or {!Ba_machine.Model.default_ext_tsp} for
          control-penalty models *)
}

type row = {
  bench : string;
  ds : string;  (** testing data set *)
  train_ds : string;  (** sibling data set used for cross-validation *)
  n_procs : int;
  n_blocks : int;
  branch_sites : int;  (** static CTI blocks *)
  branch_sites_touched : int;
  executed_branches : int;
  original : measurement;
  greedy_self : measurement;
  calder_self : measurement;  (** cost-model greedy ({!Ba_align.Calder}) *)
  btfnt_self : measurement;  (** static BTFNT chaining ({!Ba_align.Btfnt}) *)
  tsp_self : measurement;
  greedy_cross : measurement;
  tsp_cross : measurement;
  greedy_static : measurement;
      (** greedy layout trained on the {!Ba_analysis.Estimate} static
          profile (no training run at all), measured on the testing set *)
  tsp_static : measurement;
      (** TSP layout trained on the static estimate, measured on the
          testing set *)
  lower_bound : int;
  tsp_exact_procs : int;  (** procedures solved to proven optimality *)
  tsp_timeouts : int;
      (** self-trained procedures whose TSP solve hit the budget *)
  certs : int;
      (** alignment certificates issued ({!Ba_check.Certify}, all seven
          programs of the row) *)
  cert_failures : int;  (** certificates that failed re-verification *)
  stages : Timing.stages;
  solve_dist : Timing.dist;
      (** distribution of self-trained per-procedure TSP solve times *)
}

type config = {
  model : Ba_machine.Model.t;
  tsp : Tsp_align.config;
  cycles : Cycles.config;
  hk : Ba_tsp.Held_karp.config;
}

let default =
  {
    model = Ba_machine.Model.default;
    tsp = Tsp_align.default;
    cycles = Cycles.default;
    hk = Ba_tsp.Held_karp.default;
  }

(** Align every procedure with the TSP method, timing matrix construction
    and each solve separately.  Returns the orders, exact/timeout counts,
    the two stage timings and the list of per-procedure solve times. *)
let tsp_align_program (cfg : config) cfgs ~train =
  let n_exact = ref 0 and n_timeouts = ref 0 in
  let matrix_s = ref 0. and solve_s = ref 0. and solve_times = ref [] in
  let orders =
    Array.mapi
      (fun fid g ->
        let inst, mt =
          Timing.time (fun () ->
              Reduction.build cfg.model g ~profile:(Profile.proc train fid))
        in
        matrix_s := !matrix_s +. mt;
        let r, sv =
          Timing.time (fun () -> Tsp_align.solve_instance ~config:cfg.tsp inst)
        in
        solve_s := !solve_s +. sv;
        solve_times := sv :: !solve_times;
        if r.Tsp_align.exact then incr n_exact;
        if r.Tsp_align.degraded <> None then incr n_timeouts;
        r.Tsp_align.order)
      cfgs
  in
  (orders, !n_exact, !n_timeouts, !matrix_s, !solve_s, List.rev !solve_times)

(** Realize a program from pre-computed orders; returns the aligned
    program and the elapsed seconds (charged by the caller). *)
let realize_program (cfg : config) cfgs orders ~train =
  Timing.time (fun () ->
      (* Driver.align re-runs the aligner; realize directly instead *)
      let realized = Array.make (Array.length cfgs) None in
      let predicted =
        Array.mapi
          (fun fid g ->
            let r, pred =
              Evaluate.realize cfg.model g ~order:orders.(fid)
                ~train:(Profile.proc train fid)
            in
            realized.(fid) <- Some r;
            pred)
          cfgs
      in
      let realized = Array.map Option.get realized in
      let addr =
        Ba_machine.Addr.build (Array.map2 (fun g r -> (g, r)) cfgs realized)
      in
      {
        Driver.cfgs;
        orders;
        realized;
        predicted;
        addr;
        method_ = Driver.Original;
      })

(** [measure cfg aligned ~test_profile ~run] evaluates one aligned
    program against the testing workload. *)
let measure (cfg : config) (aligned : Driver.aligned) ~test_profile ~run :
    measurement =
  let penalty = Driver.analytic_penalty cfg.model aligned ~test:test_profile in
  let sim = Driver.simulate ~cycles_config:cfg.cycles cfg.model aligned ~run in
  (* internal consistency: the trace-driven penalty count must equal the
     analytic one computed from the very profile that trace produces *)
  if sim.Cycles.penalty_cycles <> penalty then
    invalid_arg
      (Printf.sprintf
         "Runner.measure: simulated penalty %d <> analytic penalty %d"
         sim.Cycles.penalty_cycles penalty);
  {
    penalty;
    cycles = sim.Cycles.cycles;
    icache_misses = sim.Cycles.icache_misses;
    ext_tsp =
      Driver.ext_tsp_score
        ~params:(Ba_machine.Model.ext_tsp_params cfg.model)
        aligned ~test:test_profile;
  }

(** [run_benchmark ?config ?spans w ~test] runs the full experiment for
    one benchmark on testing data set [test] (training on [test] for
    the self rows and on the sibling set for the cross rows).  Pure up
    to the wall clock: safe to run concurrently with other benchmarks.
    [spans] (default: disabled) receives one span per pipeline phase
    when tracing is on. *)
let run_benchmark ?(config = default) ?(spans = Ba_obs.Span.null)
    (w : Workload.t) ~(test : Workload.dataset) : row =
  let sp name f = Ba_obs.Span.with_span spans name f in
  let compiled, compile_s =
    sp "compile" (fun () -> Timing.time (fun () -> Workload.compile w))
  in
  let cfgs = compiled.Ba_minic.Compile.cfgs in
  let train_ds = Workload.sibling w test in
  let run_input input sink =
    ignore (Ba_minic.Compile.run compiled ~input ~sink)
  in
  let run_test = run_input test.Workload.input in
  let test_profile, profile_s =
    sp "profile" (fun () ->
        Timing.time (fun () ->
            Ba_minic.Compile.profile compiled ~input:test.Workload.input))
  in
  let cross_profile =
    sp "profile-cross" (fun () ->
        Ba_minic.Compile.profile compiled ~input:train_ds.Workload.input)
  in
  (* ---- layouts ---- *)
  let original, _ =
    realize_program config cfgs
      (Array.map Ba_cfg.Layout.identity cfgs)
      ~train:test_profile
  in
  let greedy_orders_of train =
    Array.mapi
      (fun fid g -> Greedy.align g ~profile:(Profile.proc train fid))
      cfgs
  in
  let greedy_self_orders, greedy_align_s =
    sp "greedy" (fun () -> Timing.time (fun () -> greedy_orders_of test_profile))
  in
  let greedy_self, greedy_realize_s =
    sp "realize-greedy" (fun () ->
        realize_program config cfgs greedy_self_orders ~train:test_profile)
  in
  let tsp_self_orders, n_exact, n_timeouts, matrix_s, solve_s, solve_times =
    sp "tsp-self" (fun () -> tsp_align_program config cfgs ~train:test_profile)
  in
  let tsp_self, tsp_program_s =
    sp "realize-tsp" (fun () ->
        realize_program config cfgs tsp_self_orders ~train:test_profile)
  in
  (* cost-model aligners measured alongside the paper's pair: Calder
     savings-greedy and the static BTFNT chainer, self-trained only.
     Both are deterministic, so they need no RNG perturbation; neither
     is part of the certificate count (the row's [certs] field keeps
     its original five-program meaning). *)
  let calder_self_orders =
    Array.mapi
      (fun fid g ->
        Calder.align config.model g ~profile:(Profile.proc test_profile fid))
      cfgs
  in
  let calder_self, _ =
    realize_program config cfgs calder_self_orders ~train:test_profile
  in
  let btfnt_self_orders =
    Array.mapi
      (fun fid g ->
        Btfnt.align config.model g ~profile:(Profile.proc test_profile fid))
      cfgs
  in
  let btfnt_self, _ =
    realize_program config cfgs btfnt_self_orders ~train:test_profile
  in
  let greedy_cross_orders = greedy_orders_of cross_profile in
  let greedy_cross, _ =
    sp "greedy-cross" (fun () ->
        realize_program config cfgs greedy_cross_orders ~train:cross_profile)
  in
  let tsp_cross_orders, _, _, _, _, _ =
    sp "tsp-cross" (fun () -> tsp_align_program config cfgs ~train:cross_profile)
  in
  let tsp_cross, _ =
    sp "realize-tsp-cross" (fun () ->
        realize_program config cfgs tsp_cross_orders ~train:cross_profile)
  in
  (* static-estimate regime: train on frequencies computed from CFG
     structure alone ({!Ba_analysis.Estimate}), never on a run.  The
     gap these rows recover between the original layout and the
     self-trained one is the paper's "unprofiled code" story. *)
  let static_profile =
    sp "profile-static" (fun () -> Ba_analysis.Estimate.program cfgs)
  in
  let greedy_static_orders = greedy_orders_of static_profile in
  let greedy_static, _ =
    sp "greedy-static" (fun () ->
        realize_program config cfgs greedy_static_orders ~train:static_profile)
  in
  let tsp_static_orders, _, _, _, _, _ =
    sp "tsp-static" (fun () ->
        tsp_align_program config cfgs ~train:static_profile)
  in
  let tsp_static, _ =
    sp "realize-tsp-static" (fun () ->
        realize_program config cfgs tsp_static_orders ~train:static_profile)
  in
  (* ---- measurements (always on the testing input) ---- *)
  let m a = measure config a ~test_profile ~run:run_test in
  let original_m, greedy_self_m, tsp_self_m, greedy_cross_m, tsp_cross_m =
    sp "measure" (fun () ->
        (m original, m greedy_self, m tsp_self, m greedy_cross, m tsp_cross))
  in
  let calder_self_m, btfnt_self_m = (m calder_self, m btfnt_self) in
  let greedy_static_m, tsp_static_m = (m greedy_static, m tsp_static) in
  (* ---- lower bound (kept per procedure for the certificates) ---- *)
  (* The Held–Karp upper bound and the certificate's claimed cost are
     denominated in the model's OBJECTIVE units — the DTSP walk cost of
     the layout — not in penalty cycles.  For Control_penalty models
     the two coincide (the paper's walk-cost identity); for Ext-TSP
     they do not, so the walk cost is computed explicitly here. *)
  let objective_cost fid order =
    let g = cfgs.(fid) in
    let prof = Profile.proc test_profile fid in
    let n = Ba_cfg.Cfg.n_blocks g in
    let predicted = Profile.predictions prof ~n_blocks:n in
    let c = ref 0 in
    Array.iteri
      (fun pos l ->
        let succ = if pos + 1 < n then Some order.(pos + 1) else None in
        c :=
          !c
          + Ba_machine.Model.edge_cost config.model
              (Ba_cfg.Cfg.block g l).Ba_cfg.Block.term ~succ
              ~predicted:predicted.(l)
              ~freqs:(Profile.block_freqs prof l))
      order;
    !c
  in
  let (bound, proc_bounds, proc_uppers), bounds_s =
    sp "bounds" (fun () ->
        Timing.time (fun () ->
            let total = ref 0 in
            let bounds = Array.make (Array.length cfgs) 0 in
            let uppers = Array.make (Array.length cfgs) 0 in
            Array.iteri
              (fun fid g ->
                let prof = Profile.proc test_profile fid in
                let upper = objective_cost fid tsp_self_orders.(fid) in
                let b =
                  Bounds.held_karp ~config:config.hk config.model g
                    ~profile:prof ~upper
                in
                bounds.(fid) <- b;
                uppers.(fid) <- upper;
                total := !total + b)
              cfgs;
            (!total, bounds, uppers)))
  in
  (* ---- certificates: independently re-verify every produced layout
     of this row ({!Ba_check.Certify}).  The self-trained TSP layout
     gets the full treatment — claimed-cost cross-check against the
     analytic evaluator, DTSP→STSP locked-pair round-trip, and the
     per-procedure Held–Karp bound; the other six programs (the
     static-estimate-trained pair included) get the
     walk/faithfulness/cost re-verification. *)
  let certs = ref 0 and cert_failures = ref 0 in
  sp "certify" (fun () ->
      let certify ?(claimed = fun _ -> None)
          ?(hk = fun _ -> Ba_check.Certify.Skip) ?(sym_check = false) ~train
          orders =
        Array.iteri
          (fun fid g ->
            incr certs;
            match
              Ba_check.Certify.proc_cert ?claimed:(claimed fid) ~hk:(hk fid)
                ~sym_check ~proc:fid config.model g
                ~profile:(Profile.proc train fid)
                ~order:orders.(fid)
            with
            | Ok _ -> ()
            | Error _ -> incr cert_failures)
          cfgs
      in
      certify ~train:test_profile (Array.map Ba_cfg.Layout.identity cfgs);
      certify ~train:test_profile greedy_self_orders;
      certify ~train:test_profile
        ~claimed:(fun fid -> Some proc_uppers.(fid))
        ~hk:(fun fid -> Ba_check.Certify.Given proc_bounds.(fid))
        ~sym_check:true tsp_self_orders;
      certify ~train:cross_profile greedy_cross_orders;
      certify ~train:cross_profile tsp_cross_orders;
      certify ~train:static_profile greedy_static_orders;
      certify ~train:static_profile tsp_static_orders);
  (* gap of the self-trained TSP layout to the Held–Karp lower bound *)
  if bound > 0 then
    Ba_obs.Metrics.observe_hk_gap
      (Float.max 0.
         (float_of_int (tsp_self_m.penalty - bound) /. float_of_int bound));
  (* per-stage timings, merged from the immutable pieces *)
  let stages =
    {
      Timing.compile_s;
      profile_s;
      greedy_s = greedy_align_s +. greedy_realize_s;
      matrix_s;
      solve_s;
      tsp_program_s;
      bounds_s;
    }
  in
  (* ---- table 1 statistics ---- *)
  let sites = Array.fold_left (fun acc g -> acc + Ba_cfg.Cfg.n_branch_sites g) 0 cfgs in
  let touched = ref 0 and executed = ref 0 in
  Array.iteri
    (fun fid g ->
      let prof = Profile.proc test_profile fid in
      touched := !touched + Profile.branch_sites_touched g prof;
      executed := !executed + Profile.executed_branches g prof)
    cfgs;
  {
    bench = w.Workload.name;
    ds = test.Workload.ds_name;
    train_ds = train_ds.Workload.ds_name;
    n_procs = Array.length cfgs;
    n_blocks = Array.fold_left (fun acc g -> acc + Ba_cfg.Cfg.n_blocks g) 0 cfgs;
    branch_sites = sites;
    branch_sites_touched = !touched;
    executed_branches = !executed;
    original = original_m;
    greedy_self = greedy_self_m;
    calder_self = calder_self_m;
    btfnt_self = btfnt_self_m;
    tsp_self = tsp_self_m;
    greedy_cross = greedy_cross_m;
    tsp_cross = tsp_cross_m;
    greedy_static = greedy_static_m;
    tsp_static = tsp_static_m;
    lower_bound = bound;
    tsp_exact_procs = n_exact;
    tsp_timeouts = n_timeouts;
    certs = !certs;
    cert_failures = !cert_failures;
    stages;
    solve_dist = Timing.dist_of solve_times;
  }

(** [run_all_outcomes ?config ?executor ?workloads ()] runs the
    experiment for every benchmark × data set pair of the given suite
    (default: the SPEC92 stand-ins, in Table 1 order; pass
    [Ba_workloads.Workload95.all] for the SPEC95 extension suite).
    Rows fan out over [executor] (default sequential) and come back in
    suite order as full task outcomes (row + wall-clock + spans); the
    measured numbers are identical at any job count. *)
let run_all_outcomes ?(config = default) ?(executor = Executor.Seq)
    ?(workloads = Workload.all) () : row Task.outcome list =
  let pairs =
    List.concat_map
      (fun w -> List.map (fun ds -> (w, ds)) (Workload.dataset_list w))
      workloads
  in
  let tasks =
    Array.of_list
      (List.mapi
         (fun i (w, ds) ->
           Task.make ~id:i
             ~label:(w.Workload.name ^ "." ^ ds.Workload.ds_name)
             (fun ctx ->
               run_benchmark ~config ~spans:(Task.spans ctx) w ~test:ds))
         pairs)
  in
  Task.run_all executor tasks |> Array.to_list

(** [run_all] is {!run_all_outcomes} stripped down to the rows. *)
let run_all ?config ?executor ?workloads () : row list =
  run_all_outcomes ?config ?executor ?workloads ()
  |> List.map (fun o -> o.Task.value)
