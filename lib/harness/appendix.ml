(** The appendix experiment: quality of the AP and Held–Karp lower
    bounds, and reliability of iterated 3-Opt, over a corpus of
    branch-alignment DTSP instances.

    Reproduces the paper's appendix observations: the AP bound is exact
    on some instances but has large gaps on many others (median 30% on
    the non-exact instances of esp.tl, some 10×), while the Held–Karp
    bound stays within a fraction of a percent of the best tours found,
    and most solver runs find the best tour. *)

open Ba_align
open Ba_tsp

type per_instance = {
  name : string;
  n_cities : int;
  tour_cost : int;  (** best tour found (exact when [opt] is set) *)
  opt : int option;  (** proven optimum, small instances only *)
  ap : int;
  hk : int;
  patching : int;  (** Karp's AP-patching heuristic (the rival method) *)
  runs_with_best : int;
  runs : int;
}

type stats = {
  instances : per_instance list;
  n_ap_exact : int;  (** instances with AP = optimum (among proven) *)
  n_proven : int;
  median_ap_gap_pct : float;  (** median (opt−ap)/max(ap,1) over non-exact proven *)
  max_ap_ratio : float;  (** max opt/ap over proven instances (ap>0) *)
  mean_hk_gap_pct : float;  (** mean (tour−hk)/tour over all instances *)
  max_hk_gap_pct : float;
  all_runs_found_best : int;  (** instances where every run hit the best *)
  mean_patching_excess_pct : float;
      (** mean (patching − tour)/max(tour,1): how much the AP-patching
          heuristic loses to iterated 3-Opt *)
  patching_wins_or_ties : int;  (** instances where patching matched 3-Opt *)
}

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

(** [study ?config ?model corpus] runs the bound study over the given
    instances. *)
let study ?(config = Iterated.default)
    ?(model = Ba_machine.Model.alpha21164)
    (corpus : Synthetic.instance list) : stats =
  let per =
    List.map
      (fun { Synthetic.name; g; prof } ->
        let inst = Reduction.build model g ~profile:prof in
        let d = inst.Reduction.dtsp in
        let tour, st = Iterated.solve ~config d in
        ignore tour;
        let opt =
          if d.Dtsp.n <= Exact.max_n then Some (Exact.optimal_cost d) else None
        in
        let tour_cost =
          match opt with Some o -> min o st.Iterated.best_cost | None -> st.Iterated.best_cost
        in
        let ap = max 0 (Hungarian.ap_bound d) in
        let hk =
          max 0 (Held_karp.directed_bound d ~upper_bound:st.Iterated.best_cost)
        in
        {
          name;
          n_cities = d.Dtsp.n;
          tour_cost;
          opt;
          ap;
          hk = min hk tour_cost;
          patching = snd (Patching.solve d);
          runs_with_best = st.Iterated.runs_with_best;
          runs = config.Iterated.runs;
        })
      corpus
  in
  let proven = List.filter_map (fun r -> Option.map (fun o -> (r, o)) r.opt) per in
  let ap_exact = List.filter (fun (r, o) -> r.ap = o) proven in
  let ap_gaps =
    proven
    |> List.filter (fun (r, o) -> r.ap <> o)
    |> List.map (fun (r, o) ->
           100.0 *. float_of_int (o - r.ap) /. float_of_int (max r.ap 1))
    |> List.sort compare |> Array.of_list
  in
  let ap_ratios =
    proven
    |> List.filter (fun (r, _) -> r.ap > 0)
    |> List.map (fun (r, o) -> float_of_int o /. float_of_int r.ap)
  in
  let hk_gaps =
    List.map
      (fun r ->
        if r.tour_cost = 0 then 0.0
        else
          100.0 *. float_of_int (r.tour_cost - r.hk) /. float_of_int r.tour_cost)
      per
  in
  let patching_excess =
    List.map
      (fun r ->
        100.0
        *. float_of_int (r.patching - r.tour_cost)
        /. float_of_int (max r.tour_cost 1))
      per
  in
  {
    instances = per;
    n_ap_exact = List.length ap_exact;
    n_proven = List.length proven;
    median_ap_gap_pct = percentile ap_gaps 0.5;
    max_ap_ratio = List.fold_left max 1.0 ap_ratios;
    mean_hk_gap_pct =
      (match hk_gaps with
      | [] -> 0.0
      | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l));
    max_hk_gap_pct = List.fold_left max 0.0 hk_gaps;
    all_runs_found_best =
      List.length (List.filter (fun r -> r.runs_with_best = r.runs) per);
    mean_patching_excess_pct =
      (match patching_excess with
      | [] -> 0.0
      | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l));
    patching_wins_or_ties =
      List.length (List.filter (fun r -> r.patching <= r.tour_cost) per);
  }
