(** Pipe-pair client driver: the server loop runs on a separate domain,
    the test code plays the client. *)

module Server = Ba_serve.Server
module Wire = Ba_serve.Wire

type t = {
  to_server : Unix.file_descr;
  from_server : Unix.file_descr;
  reader : Wire.reader;
  drain_flag : bool Atomic.t;
  domain : (Server.stop_reason, exn) result Domain.t;
  mutable input_open : bool;
  mutable output_open : bool;
  mutable stopped : (Server.stop_reason, exn) result option;
}

(* the real entry points (serve_stdin/serve_socket) ignore SIGPIPE; the
   driver calls Server.serve directly, so it reproduces that
   environment itself — otherwise a close_output test would kill the
   whole test process on the server's next write *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

let start ?(config = Server.default) () =
  Lazy.force ignore_sigpipe;
  let req_r, req_w = Unix.pipe ~cloexec:true () in
  let resp_r, resp_w = Unix.pipe ~cloexec:true () in
  let drain_flag = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        let result =
          (* the suite's no-crash assertion: any exception escaping the
             loop is captured and failed on, not swallowed *)
          match Server.serve config ~drain:drain_flag ~in_fd:req_r ~out_fd:resp_w with
          | reason -> Ok reason
          | exception e -> Error e
        in
        (try Unix.close req_r with Unix.Unix_error (_, _, _) -> ());
        (try Unix.close resp_w with Unix.Unix_error (_, _, _) -> ());
        result)
  in
  {
    to_server = req_w;
    from_server = resp_r;
    reader = Wire.reader resp_r;
    drain_flag;
    domain;
    input_open = true;
    output_open = true;
    stopped = None;
  }

let send_raw t s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    match Unix.write_substring t.to_server s !off (n - !off) with
    | w -> off := !off + w
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let send t req = send_raw t (Wire.encode_frame (Wire.request_to_string req))
let recv t = Wire.read_frame t.reader

let recv_response t =
  match recv t with
  | Wire.Frame payload -> Some (Wire.response_of_string payload)
  | Wire.Eof | Wire.Truncated | Wire.Drained -> None
  | Wire.Bad_header m -> Some (Error ("bad response framing: " ^ m))
  | Wire.Oversized n ->
      Some (Error (Printf.sprintf "oversized response frame (%d bytes)" n))

let drain t = Atomic.set t.drain_flag true

let close_input t =
  if t.input_open then begin
    t.input_open <- false;
    try Unix.close t.to_server with Unix.Unix_error (_, _, _) -> ()
  end

let close_output t =
  if t.output_open then begin
    t.output_open <- false;
    try Unix.close t.from_server with Unix.Unix_error (_, _, _) -> ()
  end

let stop t =
  match t.stopped with
  | Some r -> r
  | None ->
      close_input t;
      let r = Domain.join t.domain in
      close_output t;
      t.stopped <- Some r;
      r
