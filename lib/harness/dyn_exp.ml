(** Extension experiment: branch alignment under {e dynamic} branch
    prediction hardware (the paper's future-work footnote 6).

    For every benchmark/data-set pair, compare control penalties under
    the static per-branch predictor assumed by the reduction against a
    trace-driven simulation of BHT+BTB hardware, for the original, greedy
    and TSP layouts.  The expected shape: dynamic hardware removes most
    mispredict penalties by itself, so alignment's win shrinks to the
    misfetch/fall-through component — but it does not vanish, and the
    layout ranking is unchanged. *)

module W = Ba_workloads.Workload
module Driver = Ba_align.Driver

type row = {
  bench : string;
  ds : string;
  static_ : int * int * int;  (** original, greedy, tsp *)
  dynamic : int * int * int;
  dynamic_mispredicts : int * int * int;
}

let model = Ba_machine.Model.alpha21164

let run_one ?(config = Ba_machine.Predictor.default) (w : W.t)
    ~(test : W.dataset) : row =
  let compiled = W.compile w in
  let cfgs = compiled.Ba_minic.Compile.cfgs in
  let prof = Ba_minic.Compile.profile compiled ~input:test.W.input in
  let run sink = ignore (Ba_minic.Compile.run compiled ~input:test.W.input ~sink) in
  let eval m =
    let a = Driver.align m model cfgs ~train:prof in
    let static_ = Driver.analytic_penalty model a ~test:prof in
    let counters, sink =
      Ba_machine.Dynamic.make_sink ~config model.Ba_machine.Model.penalties
        ~realized:a.Driver.realized ~addr:a.Driver.addr
    in
    run sink;
    ( static_,
      counters.Ba_machine.Dynamic.penalty_cycles,
      counters.Ba_machine.Dynamic.cond_mispredicts )
  in
  let o_s, o_d, o_m = eval Driver.Original in
  let g_s, g_d, g_m = eval Driver.Greedy in
  let t_s, t_d, t_m = eval (Driver.Tsp Ba_align.Tsp_align.default) in
  {
    bench = w.W.name;
    ds = test.W.ds_name;
    static_ = (o_s, g_s, t_s);
    dynamic = (o_d, g_d, t_d);
    dynamic_mispredicts = (o_m, g_m, t_m);
  }

let run_all ?config () : row list =
  List.concat_map
    (fun w -> List.map (fun ds -> run_one ?config w ~test:ds) (W.dataset_list w))
    W.all

let print ppf (rows : row list) =
  Fmt.pf ppf "@.%s@." (String.make 78 '-');
  Fmt.pf ppf
    "Extension: penalties under dynamic prediction hardware (BHT+BTB)@.";
  Fmt.pf ppf "%s@." (String.make 78 '-');
  Fmt.pf ppf "%-9s | %9s %7s %7s | %9s %7s %7s | %s@." "bench.ds" "static-o"
    "greedy" "tsp" "dyn-o" "greedy" "tsp" "dyn mispredicts o/g/t";
  let norm v o = if o = 0 then 1.0 else float_of_int v /. float_of_int o in
  let sg = ref [] and st = ref [] and dg = ref [] and dt = ref [] in
  List.iter
    (fun r ->
      let o_s, g_s, t_s = r.static_ in
      let o_d, g_d, t_d = r.dynamic in
      let o_m, g_m, t_m = r.dynamic_mispredicts in
      sg := norm g_s o_s :: !sg;
      st := norm t_s o_s :: !st;
      dg := norm g_d o_d :: !dg;
      dt := norm t_d o_d :: !dt;
      Fmt.pf ppf "%-9s | %9d %7.3f %7.3f | %9d %7.3f %7.3f | %d/%d/%d@."
        (r.bench ^ "." ^ r.ds) o_s (norm g_s o_s) (norm t_s o_s) o_d
        (norm g_d o_d) (norm t_d o_d) o_m g_m t_m)
    rows;
  let mean l =
    match l with [] -> 0.0 | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  Fmt.pf ppf "%-9s | %9s %7.3f %7.3f | %9s %7.3f %7.3f |@." "MEAN" ""
    (mean !sg) (mean !st) "" (mean !dg) (mean !dt);
  Fmt.pf ppf
    "reading: with hardware prediction the penalty pool shrinks, but layout@.";
  Fmt.pf ppf
    "ranking is preserved; alignment still removes the misfetch component.@."
