(** Fault injection for the robustness suite.

    Takes a valid alignment scenario (CFGs + whole-program profile, or a
    minic source text) and applies one of a catalogue of seeded,
    deterministic mutations: dropping profile edges, corrupting counts,
    dangling labels, permuting rows, truncating procedures, forging
    broken CFGs, chopping up sources.  The test driver asserts that every
    injected fault yields either a typed error or a successful degraded
    alignment — never an uncaught exception and never a semantically
    unfaithful layout.

    Each fault kind declares what the pipeline must do with it:
    [`Must_error] faults break an invariant that validation is required
    to catch; [`Must_succeed] faults leave the scenario valid (the
    pipeline has no excuse to fail); [`Either] faults may or may not
    land on an invariant depending on the seed. *)

open Ba_cfg
module Profile = Ba_profile.Profile

(** A complete alignment scenario. *)
type scenario = { cfgs : Cfg.t array; profile : Profile.t }

(** Faults on CFGs and profiles.  The catalogue is the robustness
    contract: every kind is exercised by the fault suite. *)
type kind =
  | Drop_profile_edge  (** forget one recorded transfer (still valid) *)
  | Zero_count  (** a recorded count of 0 *)
  | Negative_count  (** a recorded count below 0 *)
  | Dangling_label  (** a destination label outside the CFG *)
  | Non_edge  (** a destination that is no CFG successor of its source *)
  | Permute_rows  (** rotate the per-block rows of one procedure *)
  | Truncate_procs  (** profile for fewer procedures than the program *)
  | Extra_proc  (** profile for more procedures than the program *)
  | Truncate_blocks  (** one procedure's profile loses its tail blocks *)
  | Corrupt_call_graph  (** a dynamic call naming a missing procedure *)
  | Cfg_bad_successor  (** a block jumping outside the procedure *)
  | Cfg_bad_entry  (** entry label out of range *)
  | Cfg_degenerate_branch  (** a forged conditional with equal arms *)
  | Cfg_scrambled_ids  (** block array no longer indexed by id *)

let all =
  [
    Drop_profile_edge; Zero_count; Negative_count; Dangling_label; Non_edge;
    Permute_rows; Truncate_procs; Extra_proc; Truncate_blocks;
    Corrupt_call_graph; Cfg_bad_successor; Cfg_bad_entry;
    Cfg_degenerate_branch; Cfg_scrambled_ids;
  ]

let name = function
  | Drop_profile_edge -> "drop-profile-edge"
  | Zero_count -> "zero-count"
  | Negative_count -> "negative-count"
  | Dangling_label -> "dangling-label"
  | Non_edge -> "non-edge"
  | Permute_rows -> "permute-rows"
  | Truncate_procs -> "truncate-procs"
  | Extra_proc -> "extra-proc"
  | Truncate_blocks -> "truncate-blocks"
  | Corrupt_call_graph -> "corrupt-call-graph"
  | Cfg_bad_successor -> "cfg-bad-successor"
  | Cfg_bad_entry -> "cfg-bad-entry"
  | Cfg_degenerate_branch -> "cfg-degenerate-branch"
  | Cfg_scrambled_ids -> "cfg-scrambled-ids"

(** What the pipeline is required to do with a fault of this kind. *)
let expectation = function
  | Drop_profile_edge -> `Must_succeed
  | Zero_count | Negative_count | Dangling_label | Non_edge | Truncate_procs
  | Extra_proc | Truncate_blocks | Corrupt_call_graph | Cfg_bad_successor
  | Cfg_bad_entry | Cfg_degenerate_branch | Cfg_scrambled_ids ->
      `Must_error
  | Permute_rows -> `Either

(* ------------------------------------------------------------------ *)

let copy_proc (p : Profile.proc) : Profile.proc =
  { Profile.freqs = Array.map Array.copy p.Profile.freqs }

let copy_profile (t : Profile.t) : Profile.t =
  { Profile.procs = Array.map copy_proc t.Profile.procs; calls = t.Profile.calls }

(** Deterministically pick a procedure with a non-empty row, if any:
    [(fid, src)] of the row. *)
let pick_row rng (t : Profile.t) =
  let candidates = ref [] in
  Array.iteri
    (fun fid p ->
      Array.iteri
        (fun src row -> if Array.length row > 0 then candidates := (fid, src) :: !candidates)
        p.Profile.freqs)
    t.Profile.procs;
  match !candidates with
  | [] -> None
  | cs ->
      let cs = List.rev cs in
      Some (List.nth cs (Random.State.int rng (List.length cs)))

(** Overwrite entry [idx] of row [(fid, src)] with [f old_dst old_count]. *)
let mutate_entry (t : Profile.t) ~fid ~src ~idx f =
  let p = t.Profile.procs.(fid) in
  let d, n = p.Profile.freqs.(src).(idx) in
  p.Profile.freqs.(src).(idx) <- f d n

(** Corrupt one recorded count (or, on an empty profile, forge a row so
    the fault is present regardless). *)
let corrupt_count rng (s : scenario) f : scenario =
  let profile = copy_profile s.profile in
  (match pick_row rng profile with
  | Some (fid, src) ->
      let row = profile.Profile.procs.(fid).Profile.freqs.(src) in
      mutate_entry profile ~fid ~src
        ~idx:(Random.State.int rng (Array.length row))
        (fun d n -> (d, f n))
  | None ->
      (* empty profile: plant a corrupted entry at the entry block *)
      profile.Profile.procs.(0).Profile.freqs.(0) <- [| (0, f 1) |]);
  { s with profile }

let inject ~seed (k : kind) (s : scenario) : scenario =
  let rng = Random.State.make [| seed; Hashtbl.hash (name k) |] in
  let pick_cfg () = Random.State.int rng (Array.length s.cfgs) in
  match k with
  | Drop_profile_edge -> (
      let profile = copy_profile s.profile in
      match pick_row rng profile with
      | None -> { s with profile }
      | Some (fid, src) ->
          let p = profile.Profile.procs.(fid) in
          let row = p.Profile.freqs.(src) in
          let idx = Random.State.int rng (Array.length row) in
          p.Profile.freqs.(src) <-
            Array.of_list
              (List.filteri (fun i _ -> i <> idx) (Array.to_list row));
          { s with profile })
  | Zero_count -> corrupt_count rng s (fun _ -> 0)
  | Negative_count -> corrupt_count rng s (fun n -> -n - 1)
  | Dangling_label ->
      let profile = copy_profile s.profile in
      (match pick_row rng profile with
      | Some (fid, src) ->
          let row = profile.Profile.procs.(fid).Profile.freqs.(src) in
          let nb = Cfg.n_blocks s.cfgs.(fid) in
          mutate_entry profile ~fid ~src
            ~idx:(Random.State.int rng (Array.length row))
            (fun _ n -> (nb + 3, n))
      | None ->
          profile.Profile.procs.(0).Profile.freqs.(0) <-
            [| (Cfg.n_blocks s.cfgs.(0) + 3, 1) |]);
      { s with profile }
  | Non_edge ->
      (* record a transfer out of a block to a label that is not among
         its successors; exit blocks (no successors) make this easy *)
      let profile = copy_profile s.profile in
      let fid = pick_cfg () in
      let g = s.cfgs.(fid) in
      let nb = Cfg.n_blocks g in
      let found = ref None in
      for src = 0 to nb - 1 do
        for dst = 0 to nb - 1 do
          if
            !found = None
            && not (Block.has_successor (Cfg.block g src) dst)
          then found := Some (src, dst)
        done
      done;
      (match !found with
      | Some (src, dst) ->
          let p = profile.Profile.procs.(fid) in
          p.Profile.freqs.(src) <-
            Array.append p.Profile.freqs.(src) [| (dst, 7) |]
      | None ->
          (* complete CFG (no non-edge exists): dangle instead *)
          profile.Profile.procs.(fid).Profile.freqs.(0) <- [| (nb + 1, 7) |]);
      { s with profile }
  | Permute_rows ->
      let profile = copy_profile s.profile in
      let fid = pick_cfg () in
      let p = profile.Profile.procs.(fid) in
      let nb = Array.length p.Profile.freqs in
      let rotated =
        Array.init nb (fun i -> p.Profile.freqs.((i + 1) mod nb))
      in
      profile.Profile.procs.(fid) <- { Profile.freqs = rotated };
      { s with profile }
  | Truncate_procs ->
      let procs = s.profile.Profile.procs in
      let keep = max 0 (Array.length procs - 1) in
      {
        s with
        profile =
          { s.profile with Profile.procs = Array.sub procs 0 keep };
      }
  | Extra_proc ->
      let extra = { Profile.freqs = [| [||] |] } in
      {
        s with
        profile =
          {
            s.profile with
            Profile.procs = Array.append s.profile.Profile.procs [| extra |];
          };
      }
  | Truncate_blocks ->
      let profile = copy_profile s.profile in
      let fid = pick_cfg () in
      let p = profile.Profile.procs.(fid) in
      let nb = Array.length p.Profile.freqs in
      profile.Profile.procs.(fid) <-
        { Profile.freqs = Array.sub p.Profile.freqs 0 (max 0 (nb - 1)) };
      { s with profile }
  | Corrupt_call_graph ->
      let n_procs = Array.length s.profile.Profile.procs in
      {
        s with
        profile =
          {
            s.profile with
            Profile.calls = (n_procs + 1, 0, 5) :: s.profile.Profile.calls;
          };
      }
  | Cfg_bad_successor ->
      let fid = pick_cfg () in
      let g = s.cfgs.(fid) in
      let blocks = Array.copy g.Cfg.blocks in
      (* forge the record directly: Cfg.make would refuse to build this *)
      blocks.(0) <-
        {
          blocks.(0) with
          Block.term = Block.Goto (Cfg.n_blocks g + 2);
        };
      let cfgs = Array.copy s.cfgs in
      cfgs.(fid) <- { g with Cfg.blocks };
      { s with cfgs }
  | Cfg_bad_entry ->
      let fid = pick_cfg () in
      let cfgs = Array.copy s.cfgs in
      cfgs.(fid) <- { s.cfgs.(fid) with Cfg.entry = -2 };
      { s with cfgs }
  | Cfg_degenerate_branch ->
      let fid = pick_cfg () in
      let g = s.cfgs.(fid) in
      let blocks = Array.copy g.Cfg.blocks in
      let t = min 1 (Cfg.n_blocks g - 1) in
      blocks.(0) <- { blocks.(0) with Block.term = Block.Branch { t; f = t } };
      let cfgs = Array.copy s.cfgs in
      cfgs.(fid) <- { g with Cfg.blocks };
      { s with cfgs }
  | Cfg_scrambled_ids ->
      let fid = pick_cfg () in
      let g = s.cfgs.(fid) in
      let blocks = Array.copy g.Cfg.blocks in
      if Array.length blocks >= 2 then begin
        let b0 = blocks.(0) in
        blocks.(0) <- blocks.(1);
        blocks.(1) <- b0
      end;
      let cfgs = Array.copy s.cfgs in
      cfgs.(fid) <- { g with Cfg.blocks };
      { s with cfgs }

(* ------------------------------------------------------------------ *)

(** Faults on minic source text, for the front-end leg of the suite.
    Both may happen to leave the program compilable — the contract is
    only "typed error or success, never an exception". *)
type source_kind =
  | Truncate_source  (** chop the text at a seeded offset *)
  | Corrupt_chars  (** overwrite a few characters with junk *)

let all_source = [ Truncate_source; Corrupt_chars ]

let source_name = function
  | Truncate_source -> "truncate-source"
  | Corrupt_chars -> "corrupt-chars"

let inject_source ~seed (k : source_kind) (src : string) : string =
  let rng = Random.State.make [| seed; Hashtbl.hash (source_name k) |] in
  let len = String.length src in
  if len = 0 then src
  else
    match k with
    | Truncate_source -> String.sub src 0 (Random.State.int rng len)
    | Corrupt_chars ->
        let b = Bytes.of_string src in
        let junk = [| '?'; '@'; '#'; '\000'; '}' |] in
        for _ = 1 to 3 do
          Bytes.set b (Random.State.int rng len)
            junk.(Random.State.int rng (Array.length junk))
        done;
        Bytes.to_string b

(* ------------------------------------------------------------------ *)

(** Protocol faults: corrupt the framed bytes of one valid request.
    See the interface for the per-kind daemon contract. *)

module Wire = Ba_serve.Wire
module Json = Ba_obs.Json

type protocol_kind =
  | Truncated_frame
  | Garbage_json
  | Bad_length_header
  | Oversized_frame
  | Missing_field
  | Wrong_type
  | Unknown_verb
  | Unknown_model
  | Negative_deadline
  | Huge_cfg

let all_protocol =
  [
    Truncated_frame; Garbage_json; Bad_length_header; Oversized_frame;
    Missing_field; Wrong_type; Unknown_verb; Unknown_model; Negative_deadline;
    Huge_cfg;
  ]

let protocol_name = function
  | Truncated_frame -> "truncated-frame"
  | Garbage_json -> "garbage-json"
  | Bad_length_header -> "bad-length-header"
  | Oversized_frame -> "oversized-frame"
  | Missing_field -> "missing-field"
  | Wrong_type -> "wrong-type"
  | Unknown_verb -> "unknown-verb"
  | Unknown_model -> "unknown-model"
  | Negative_deadline -> "negative-deadline"
  | Huge_cfg -> "huge-cfg"

let protocol_expectation = function
  | Truncated_frame | Bad_length_header -> `Ends_stream
  | Garbage_json | Oversized_frame | Missing_field | Wrong_type | Unknown_verb
  | Unknown_model | Huge_cfg ->
      `Error_response
  | Negative_deadline -> `Ok_response

(** Rewrite one top-level field of a request payload (parse, replace,
    re-emit canonically); falls back to the original payload if it was
    not an object — the fault then degenerates to a different typed
    error, which still satisfies the contract. *)
let rewrite payload f =
  match Json.parse payload with
  | Ok (Json.Obj fields) -> Json.to_string (Json.Obj (f fields))
  | Ok _ | Error _ -> payload

let inject_protocol ?(max_frame_bytes = 4 * 1024 * 1024) ?(max_blocks = 256)
    ~seed (k : protocol_kind) (payload : string) : string =
  let rng = Random.State.make [| seed; Hashtbl.hash (protocol_name k) |] in
  match k with
  | Truncated_frame ->
      let frame = Wire.encode_frame payload in
      (* keep the full header so the server commits to reading a body,
         then cut somewhere inside the payload *)
      let header = String.index frame '\n' + 1 in
      let keep = header + Random.State.int rng (String.length payload) in
      String.sub frame 0 keep
  | Garbage_json ->
      (* correct framing around bytes that cannot parse as JSON *)
      Wire.encode_frame ("@" ^ payload)
  | Bad_length_header -> "not-a-length\n" ^ payload ^ "\n"
  | Oversized_frame ->
      (* declare one byte over the limit and actually send that many
         padding bytes, so the skip leaves the stream synchronized *)
      let len = max_frame_bytes + 1 in
      Printf.sprintf "%d\n%s\n" len (String.make len 'x')
  | Missing_field ->
      Wire.encode_frame
        (rewrite payload (List.filter (fun (k, _) -> k <> "cfg")))
  | Wrong_type ->
      Wire.encode_frame
        (rewrite payload (fun fields ->
             List.map
               (fun (k, v) ->
                 if k = "cfg" then (k, Json.String "not a cfg") else (k, v))
               fields))
  | Unknown_verb ->
      Wire.encode_frame
        (rewrite payload (fun fields ->
             List.map
               (fun (k, v) ->
                 if k = "verb" then (k, Json.String "frobnicate") else (k, v))
               fields))
  | Unknown_model ->
      Wire.encode_frame
        (rewrite payload (fun fields ->
             ("options", Json.Obj [ ("model", Json.String "vliw-9000") ])
             :: List.filter (fun (k, _) -> k <> "options") fields))
  | Negative_deadline ->
      Wire.encode_frame
        (rewrite payload (fun fields ->
             ("options", Json.Obj [ ("deadline_ms", Json.Int (-100)) ])
             :: List.filter (fun (k, _) -> k <> "options") fields))
  | Huge_cfg ->
      let blocks =
        List.init (max_blocks + 1) (fun _ ->
            Json.Obj
              [
                ("size", Json.Int 1);
                ("term", Json.Obj [ ("kind", Json.String "exit") ]);
              ])
      in
      let cfg =
        Json.Obj
          [
            ("name", Json.String "huge");
            ("entry", Json.Int 0);
            ("blocks", Json.List blocks);
          ]
      in
      Wire.encode_frame
        (rewrite payload (fun fields ->
             List.map (fun (k, v) -> if k = "cfg" then (k, cfg) else (k, v)) fields))
