(** CSV export of the experiment results, for plotting the figures with
    external tools.  One file per table/figure, written under a results
    directory. *)

let write_file path lines =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        lines)

let frac a b = if b = 0 then 1.0 else float_of_int a /. float_of_int b

(** [rows_csv rows] renders the full measurement set — one line per
    benchmark/data-set pair, raw counts plus normalized series for both
    figures. *)
let rows_csv (rows : Runner.row list) : string list =
  "bench,ds,train_ds,procs,blocks,branch_sites,sites_touched,executed_branches,\
   orig_penalty,greedy_self_penalty,tsp_self_penalty,greedy_cross_penalty,\
   tsp_cross_penalty,lower_bound,orig_cycles,greedy_self_cycles,\
   tsp_self_cycles,greedy_cross_cycles,tsp_cross_cycles,\
   fig2_greedy,fig2_tsp,fig2_bound,fig2_greedy_time,fig2_tsp_time"
  :: List.map
       (fun (r : Runner.row) ->
         let m (x : Runner.measurement) = x.Runner.penalty in
         let c (x : Runner.measurement) = x.Runner.cycles in
         let op = m r.Runner.original and oc = c r.Runner.original in
         Printf.sprintf
           "%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f"
           r.Runner.bench r.Runner.ds r.Runner.train_ds r.Runner.n_procs
           r.Runner.n_blocks r.Runner.branch_sites r.Runner.branch_sites_touched
           r.Runner.executed_branches op
           (m r.Runner.greedy_self) (m r.Runner.tsp_self)
           (m r.Runner.greedy_cross) (m r.Runner.tsp_cross) r.Runner.lower_bound
           oc
           (c r.Runner.greedy_self) (c r.Runner.tsp_self)
           (c r.Runner.greedy_cross) (c r.Runner.tsp_cross)
           (frac (m r.Runner.greedy_self) op)
           (frac (m r.Runner.tsp_self) op)
           (frac r.Runner.lower_bound op)
           (frac (c r.Runner.greedy_self) oc)
           (frac (c r.Runner.tsp_self) oc))
       rows

(** [timing_csv rows] renders the wall-clock side of the measurement
    set: per-stage seconds plus the distribution of per-procedure TSP
    solve times (p50/p95/max — the pool's load-imbalance view).  Kept
    in its own file because timings are inherently run-dependent: the
    deterministic CSVs above must diff clean across job counts, this
    one never will. *)
let timing_csv (rows : Runner.row list) : string list =
  "bench,ds,compile_s,profile_s,greedy_s,matrix_s,solve_s,tsp_program_s,\
   bounds_s,n_solves,solve_total_s,solve_p50_s,solve_p95_s,solve_max_s"
  :: List.map
       (fun (r : Runner.row) ->
         let s = r.Runner.stages and d = r.Runner.solve_dist in
         Printf.sprintf
           "%s,%s,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%.6f,%.6f,%.6f,%.6f"
           r.Runner.bench r.Runner.ds s.Timing.compile_s s.Timing.profile_s
           s.Timing.greedy_s s.Timing.matrix_s s.Timing.solve_s
           s.Timing.tsp_program_s s.Timing.bounds_s d.Timing.n
           d.Timing.total_s d.Timing.p50_s d.Timing.p95_s d.Timing.max_s)
       rows

(** [appendix_csv stats] renders the per-instance bound study. *)
let appendix_csv (s : Appendix.stats) : string list =
  "instance,cities,tour,opt,ap,hk,patching,runs_with_best,runs"
  :: List.map
       (fun (r : Appendix.per_instance) ->
         Printf.sprintf "%s,%d,%d,%s,%d,%d,%d,%d,%d" r.Appendix.name
           r.Appendix.n_cities r.Appendix.tour_cost
           (match r.Appendix.opt with Some o -> string_of_int o | None -> "")
           r.Appendix.ap r.Appendix.hk r.Appendix.patching
           r.Appendix.runs_with_best r.Appendix.runs)
       s.Appendix.instances

(** [export ~dir ~rows ~rows95 ~appendix] writes all CSV files; returns
    the paths written. *)
let export ~dir ~(rows : Runner.row list) ~(rows95 : Runner.row list)
    ~(appendix : Appendix.stats option) : string list =
  (if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
  let paths = ref [] in
  let emit name lines =
    let path = Filename.concat dir name in
    write_file path lines;
    paths := path :: !paths
  in
  if rows <> [] then emit "spec92.csv" (rows_csv rows);
  if rows95 <> [] then emit "spec95.csv" (rows_csv rows95);
  (match appendix with
  | Some s -> emit "appendix.csv" (appendix_csv s)
  | None -> ());
  List.rev !paths

(** [export_timings ~dir ~rows ~rows95] writes the run-dependent timing
    CSVs (separate from {!export} so determinism checks can diff the
    measurement CSVs alone); returns the paths written. *)
let export_timings ~dir ~(rows : Runner.row list)
    ~(rows95 : Runner.row list) : string list =
  (if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
  let paths = ref [] in
  let emit name lines =
    let path = Filename.concat dir name in
    write_file path lines;
    paths := path :: !paths
  in
  if rows <> [] then emit "timing92.csv" (timing_csv rows);
  if rows95 <> [] then emit "timing95.csv" (timing_csv rows95);
  List.rev !paths
