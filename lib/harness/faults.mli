(** Seeded, deterministic fault injection for the robustness suite: take
    a valid alignment scenario and break it in one catalogued way.  The
    fault suite asserts that every injected fault yields either a typed
    error or a successful (possibly degraded) alignment — never an
    uncaught exception. *)

open Ba_cfg
module Profile = Ba_profile.Profile

(** A complete alignment scenario. *)
type scenario = { cfgs : Cfg.t array; profile : Profile.t }

(** Faults on CFGs and profiles. *)
type kind =
  | Drop_profile_edge  (** forget one recorded transfer (still valid) *)
  | Zero_count  (** a recorded count of 0 *)
  | Negative_count  (** a recorded count below 0 *)
  | Dangling_label  (** a destination label outside the CFG *)
  | Non_edge  (** a destination that is no CFG successor of its source *)
  | Permute_rows  (** rotate the per-block rows of one procedure *)
  | Truncate_procs  (** profile for fewer procedures than the program *)
  | Extra_proc  (** profile for more procedures than the program *)
  | Truncate_blocks  (** one procedure's profile loses its tail blocks *)
  | Corrupt_call_graph  (** a dynamic call naming a missing procedure *)
  | Cfg_bad_successor  (** a block jumping outside the procedure *)
  | Cfg_bad_entry  (** entry label out of range *)
  | Cfg_degenerate_branch  (** a forged conditional with equal arms *)
  | Cfg_scrambled_ids  (** block array no longer indexed by id *)

(** Every scenario fault kind, in a fixed order. *)
val all : kind list

val name : kind -> string

(** What the pipeline is required to do with a fault of this kind:
    [`Must_error] faults break an invariant validation must catch,
    [`Must_succeed] faults leave the scenario valid, [`Either] faults
    may or may not land on an invariant depending on the seed. *)
val expectation : kind -> [ `Must_error | `Must_succeed | `Either ]

(** [inject ~seed k s] is [s] with one fault of kind [k] applied.  The
    input scenario is not mutated.  Deterministic in [(seed, k)]. *)
val inject : seed:int -> kind -> scenario -> scenario

(** Faults on minic source text (front-end leg). *)
type source_kind =
  | Truncate_source  (** chop the text at a seeded offset *)
  | Corrupt_chars  (** overwrite a few characters with junk *)

val all_source : source_kind list
val source_name : source_kind -> string

(** [inject_source ~seed k src] corrupts the source text.  The result
    may or may not still compile; the contract is only "typed error or
    success, never an exception". *)
val inject_source : seed:int -> source_kind -> string -> string

(** {1 Protocol faults (the serve daemon's wire format)}

    Faults on framed request bytes, replayed at [balign serve] by the
    soak driver.  Each takes the JSON payload of one {e valid} request
    and returns the (possibly corrupt) bytes to write.  The daemon's
    contract: every fault yields a typed error response or a degraded
    but certified layout — never a crash, never an uncertified
    layout. *)

type protocol_kind =
  | Truncated_frame  (** frame cut mid-payload (= mid-request disconnect) *)
  | Garbage_json  (** valid framing, unparsable payload *)
  | Bad_length_header  (** the length line is not a decimal number *)
  | Oversized_frame  (** declared length over the server's frame limit *)
  | Missing_field  (** align request with its [cfg] removed *)
  | Wrong_type  (** [cfg] replaced by a string *)
  | Unknown_verb  (** verb nobody implements *)
  | Unknown_model  (** options naming a model not in the registry *)
  | Negative_deadline  (** clamped to 0: degraded but certified *)
  | Huge_cfg  (** more blocks than the server accepts *)

val all_protocol : protocol_kind list
val protocol_name : protocol_kind -> string

(** What the daemon must do with the fault: reply with a typed error
    and keep serving ([`Error_response]), reply [ok] with a certified
    (possibly degraded) layout ([`Ok_response]), or reply with a final
    error and end the conversation cleanly ([`Ends_stream]). *)
val protocol_expectation :
  protocol_kind -> [ `Error_response | `Ok_response | `Ends_stream ]

(** [inject_protocol ~seed k payload] is the byte string to write for a
    fault of kind [k].  [max_frame_bytes] / [max_blocks] must match the
    serving config so [Oversized_frame] stays stream-synchronized and
    [Huge_cfg] lands just over the CFG limit.  Deterministic in
    [(seed, k)]. *)
val inject_protocol :
  ?max_frame_bytes:int ->
  ?max_blocks:int ->
  seed:int ->
  protocol_kind ->
  string ->
  string
