(** Seeded, deterministic fault injection for the robustness suite: take
    a valid alignment scenario and break it in one catalogued way.  The
    fault suite asserts that every injected fault yields either a typed
    error or a successful (possibly degraded) alignment — never an
    uncaught exception. *)

open Ba_cfg
module Profile = Ba_profile.Profile

(** A complete alignment scenario. *)
type scenario = { cfgs : Cfg.t array; profile : Profile.t }

(** Faults on CFGs and profiles. *)
type kind =
  | Drop_profile_edge  (** forget one recorded transfer (still valid) *)
  | Zero_count  (** a recorded count of 0 *)
  | Negative_count  (** a recorded count below 0 *)
  | Dangling_label  (** a destination label outside the CFG *)
  | Non_edge  (** a destination that is no CFG successor of its source *)
  | Permute_rows  (** rotate the per-block rows of one procedure *)
  | Truncate_procs  (** profile for fewer procedures than the program *)
  | Extra_proc  (** profile for more procedures than the program *)
  | Truncate_blocks  (** one procedure's profile loses its tail blocks *)
  | Corrupt_call_graph  (** a dynamic call naming a missing procedure *)
  | Cfg_bad_successor  (** a block jumping outside the procedure *)
  | Cfg_bad_entry  (** entry label out of range *)
  | Cfg_degenerate_branch  (** a forged conditional with equal arms *)
  | Cfg_scrambled_ids  (** block array no longer indexed by id *)

(** Every scenario fault kind, in a fixed order. *)
val all : kind list

val name : kind -> string

(** What the pipeline is required to do with a fault of this kind:
    [`Must_error] faults break an invariant validation must catch,
    [`Must_succeed] faults leave the scenario valid, [`Either] faults
    may or may not land on an invariant depending on the seed. *)
val expectation : kind -> [ `Must_error | `Must_succeed | `Either ]

(** [inject ~seed k s] is [s] with one fault of kind [k] applied.  The
    input scenario is not mutated.  Deterministic in [(seed, k)]. *)
val inject : seed:int -> kind -> scenario -> scenario

(** Faults on minic source text (front-end leg). *)
type source_kind =
  | Truncate_source  (** chop the text at a seeded offset *)
  | Corrupt_chars  (** overwrite a few characters with junk *)

val all_source : source_kind list
val source_name : source_kind -> string

(** [inject_source ~seed k src] corrupts the source text.  The result
    may or may not still compile; the contract is only "typed error or
    success, never an exception". *)
val inject_source : seed:int -> source_kind -> string -> string
