(** Wall-clock stage timing for the Table 2 reproduction. *)

(** Run a thunk, returning its result and elapsed seconds. *)
val time : (unit -> 'a) -> 'a * float

(** Stage timings of one benchmark pipeline (Table 2 columns). *)
type stages = {
  mutable compile_s : float;
  mutable profile_s : float;
  mutable greedy_s : float;
  mutable matrix_s : float;
  mutable solve_s : float;
  mutable tsp_program_s : float;
  mutable bounds_s : float;
}

val zero : unit -> stages
