(** Wall-clock stage timing for the Table 2 reproduction.  [stages] is
    immutable; tasks return their own values and the caller combines
    them with the pure {!add}/{!merge} after the join — nothing for
    concurrent pipeline stages to race on. *)

(** Run a thunk, returning its result and elapsed seconds. *)
val time : (unit -> 'a) -> 'a * float

(** Stage timings of one benchmark pipeline (Table 2 columns). *)
type stages = {
  compile_s : float;
  profile_s : float;
  greedy_s : float;
  matrix_s : float;
  solve_s : float;
  tsp_program_s : float;
  bounds_s : float;
}

val zero : stages

(** Pure component-wise sum. *)
val add : stages -> stages -> stages

(** Sum a list of per-task timings, in order. *)
val merge : stages list -> stages

(** Summary of a sample of per-task durations (seconds): the pool's
    load-imbalance view. *)
type dist = {
  n : int;
  total_s : float;
  p50_s : float;  (** median, nearest-rank *)
  p95_s : float;
  max_s : float;
}

val empty_dist : dist

val dist_of : float list -> dist
