(** Extension experiment: interprocedural code placement (the paper's
    closing future-work item, via Pettis–Hansen procedure ordering).

    Intraprocedural alignment fixes the block order inside each
    procedure; where procedures land relative to each other still decides
    which ones fight over I-cache lines.  This experiment generates a
    program with many small procedures called with a skewed distribution
    (total code comfortably exceeding the 8 KB L1 I-cache), block-aligns
    it with the TSP method, and compares simulated misses and cycles for
    three procedure placements: declaration order, Pettis–Hansen
    call-graph order, and a worst-case-flavoured interleaving (hot
    procedures spread as far apart as possible). *)

module Driver = Ba_align.Driver
module Cycles = Ba_machine.Cycles

(** [gen_source ~n_funcs] builds a minic program: [n_funcs] worker
    functions of varying size and a dispatcher main that calls them with
    a heavily skewed (half-half-half…) distribution. *)
let gen_source ~n_funcs =
  if n_funcs < 2 || n_funcs > 30 then invalid_arg "Interproc.gen_source";
  let buf = Buffer.create 4096 in
  for k = 0 to n_funcs - 1 do
    (* bodies differ in loop depth and carry a fat unrolled mixing
       sequence, so each function occupies a meaningful slice of the
       I-cache and total code exceeds it *)
    let inner = 4 + (k mod 5) in
    let unrolled =
      String.concat ""
        (List.init 10 (fun j ->
             Printf.sprintf
               "    a = ((a << 1) ^ (a >> %d)) + %d; a = a & 1048575;\n"
               (1 + ((j + k) mod 7))
               ((j * 31) + k)))
    in
    Buffer.add_string buf
      (Printf.sprintf
         "fn work%d(x) {\n\
         \  var a = x + %d;\n\
         \  var i = 0;\n\
         \  while (i < %d) {\n\
         \    if (a %% 2 == 0) { a = a / 2; } else { a = a * 3 + 1; }\n\
         \    if (a > 100000) { a = a %% 9973; }\n\
         %s\
         \    a = (a * 17 + %d) %% 65536;\n\
         \    i = i + 1;\n\
         \  }\n\
         \  return a;\n\
         }\n"
         k k inner unrolled (k * 7))
  done;
  (* dispatcher: bucket 0 is the hottest function, each next bucket
     halves.  bucket = number of trailing zeros capped at n_funcs-1 *)
  Buffer.add_string buf
    (Printf.sprintf
       "fn pick(r) {\n\
       \  var k = 0;\n\
       \  while (k < %d && (r & 1) == 1) { r = r >> 1; k = k + 1; }\n\
       \  return k;\n\
        }\n"
       (n_funcs - 1));
  Buffer.add_string buf "fn main() {\n  var n = read();\n  var seed = read();\n";
  Buffer.add_string buf "  var acc = 0;\n  var t = 0;\n";
  Buffer.add_string buf
    "  while (t < n) {\n    seed = (seed * 25214903917 + 11) & 281474976710655;\n";
  Buffer.add_string buf "    var r = (seed >> 20) & 1048575;\n";
  Buffer.add_string buf "    switch (pick(r)) {\n";
  for k = 0 to n_funcs - 1 do
    Buffer.add_string buf
      (Printf.sprintf "      case %d: { acc = acc + work%d(r); }\n" k k)
  done;
  Buffer.add_string buf "      default: { acc = acc + 1; }\n    }\n";
  Buffer.add_string buf "    t = t + 1;\n  }\n  print(acc & 1048575);\n}\n";
  Buffer.contents buf

type placement = { name : string; icache_misses : int; cycles : int }

type result = {
  n_funcs : int;
  total_instrs : int;  (** program code size, instructions *)
  calls : int;
  placements : placement list;  (** declaration / pettis-hansen / spread *)
}

let run ?(n_funcs = 24) ?(iterations = 6_000) () : result =
  let p = Ba_machine.Model.alpha21164 in
  let src = gen_source ~n_funcs in
  let compiled = Ba_minic.Compile.compile_exn src in
  let cfgs = compiled.Ba_minic.Compile.cfgs in
  let input = [| iterations; 12345 |] in
  let run_prog sink = ignore (Ba_minic.Compile.run compiled ~input ~sink) in
  let prof = Ba_minic.Compile.profile compiled ~input in
  let aligned =
    Driver.align (Driver.Tsp Ba_align.Tsp_align.default) p cfgs ~train:prof
  in
  let n = Array.length cfgs in
  let entry =
    match Ba_minic.Ir.find_func compiled.Ba_minic.Compile.prog "main" with
    | Some fid -> fid
    | None -> 0
  in
  let ph_order =
    Ba_align.Proc_order.order ~n_procs:n ~entry prof.Ba_profile.Profile.calls
  in
  (* adversarial spread: entry first, then alternate ends of the PH order
     so strongly-coupled procedures land far apart *)
  let spread =
    let rest = Array.to_list ph_order |> List.filter (( <> ) entry) in
    let arr = Array.of_list rest in
    let m = Array.length arr in
    let out = ref [ entry ] in
    for i = 0 to m - 1 do
      let j = if i mod 2 = 0 then i / 2 else m - 1 - (i / 2) in
      out := arr.(j) :: !out
    done;
    Array.of_list (List.rev !out)
  in
  let simulate name proc_order =
    let addr =
      Ba_machine.Addr.build ?proc_order
        (Array.map2 (fun g r -> (g, r)) cfgs aligned.Driver.realized)
    in
    let ctxs =
      Array.mapi
        (fun fid r ->
          Ba_machine.Pipeline.ctx_of_realized r
            ~predicted:aligned.Driver.predicted.(fid))
        aligned.Driver.realized
    in
    let sink, result = Cycles.make_sink p ~cfgs ~ctxs ~addr in
    run_prog sink;
    let res = result () in
    {
      name;
      icache_misses = res.Cycles.icache_misses;
      cycles = res.Cycles.cycles;
    }
  in
  let weight_order =
    Ba_align.Proc_order.by_weight ~n_procs:n ~entry
      prof.Ba_profile.Profile.calls
  in
  let placements =
    [
      simulate "declaration order" None;
      simulate "pettis-hansen call-graph order" (Some ph_order);
      simulate "hottest-first (by weight)" (Some weight_order);
      simulate "adversarial spread" (Some spread);
    ]
  in
  {
    n_funcs = n;
    total_instrs = aligned.Driver.addr.Ba_machine.Addr.total_instrs;
    calls = Ba_profile.Profile.total_calls prof;
    placements;
  }

let print ppf (r : result) =
  Fmt.pf ppf "@.%s@." (String.make 78 '-');
  Fmt.pf ppf "Extension: interprocedural placement (Pettis-Hansen procedure ordering)@.";
  Fmt.pf ppf "%s@." (String.make 78 '-');
  Fmt.pf ppf
    "%d procedures, %d instructions of code (I-cache holds 2048), %d dynamic calls@."
    r.n_funcs r.total_instrs r.calls;
  Fmt.pf ppf "%-36s %14s %14s@." "procedure placement" "icache misses" "cycles";
  List.iter
    (fun pl ->
      Fmt.pf ppf "%-36s %14d %14d@." pl.name pl.icache_misses pl.cycles)
    r.placements
