(** Extension experiment: code replication (tail duplication) + branch
    alignment.

    For each benchmark/data set: profile the original program, tail-
    duplicate its hot join blocks ({!Ba_minic.Transform}), re-profile the
    transformed program, TSP-align both, and compare modelled penalties,
    simulated cycles and code size.  The expected shape: replication
    removes taken-branch penalties alignment alone cannot (joins with
    several hot predecessors), at a measurable code-size cost that the
    I-cache term pushes back on. *)

module W = Ba_workloads.Workload
module Driver = Ba_align.Driver

type row = {
  bench : string;
  ds : string;
  clones : int;
  code_before : int;  (** instructions *)
  code_after : int;
  penalty_before : int;  (** TSP-aligned penalties *)
  penalty_after : int;
  cycles_before : int;
  cycles_after : int;
}

let model = Ba_machine.Model.alpha21164

let measure compiled ~input =
  let prof = Ba_minic.Compile.profile compiled ~input in
  let a =
    Driver.align (Driver.Tsp Ba_align.Tsp_align.default) model
      compiled.Ba_minic.Compile.cfgs ~train:prof
  in
  let penalty = Driver.analytic_penalty model a ~test:prof in
  let sim =
    Driver.simulate model a ~run:(fun sink ->
        ignore (Ba_minic.Compile.run compiled ~input ~sink))
  in
  (prof, penalty, sim.Ba_machine.Cycles.cycles, a.Driver.addr.Ba_machine.Addr.total_instrs)

let run_one ?(config = Ba_minic.Transform.default) (w : W.t)
    ~(test : W.dataset) : row =
  let compiled = W.compile w in
  let input = test.W.input in
  let prof0, penalty_before, cycles_before, code_before =
    measure compiled ~input
  in
  let prog', st =
    Ba_minic.Transform.program ~config compiled.Ba_minic.Compile.prog
      ~profile:prof0
  in
  let compiled' = Ba_minic.Compile.of_ir prog' in
  let _, penalty_after, cycles_after, code_after = measure compiled' ~input in
  {
    bench = w.W.name;
    ds = test.W.ds_name;
    clones = st.Ba_minic.Transform.clones;
    code_before;
    code_after;
    penalty_before;
    penalty_after;
    cycles_before;
    cycles_after;
  }

let run_all ?config () : row list =
  List.concat_map
    (fun w -> List.map (fun ds -> run_one ?config w ~test:ds) (W.dataset_list w))
    W.all

let print ppf (rows : row list) =
  Fmt.pf ppf "@.%s@." (String.make 78 '-');
  Fmt.pf ppf
    "Extension: tail duplication + TSP alignment (code replication [15,22])@.";
  Fmt.pf ppf "%s@." (String.make 78 '-');
  Fmt.pf ppf "%-9s %7s %8s %8s %12s %12s %12s %12s@." "bench.ds" "clones"
    "code" "code'" "penalty" "penalty'" "cycles" "cycles'";
  let dp = ref [] and dc = ref [] in
  List.iter
    (fun r ->
      let f a b = if a = 0 then 1.0 else float_of_int b /. float_of_int a in
      dp := f r.penalty_before r.penalty_after :: !dp;
      dc := f r.cycles_before r.cycles_after :: !dc;
      Fmt.pf ppf "%-9s %7d %8d %8d %12d %12d %12d %12d@."
        (r.bench ^ "." ^ r.ds) r.clones r.code_before r.code_after
        r.penalty_before r.penalty_after r.cycles_before r.cycles_after)
    rows;
  let mean l =
    match l with
    | [] -> 1.0
    | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  Fmt.pf ppf
    "mean post/pre ratios: penalties %.3f, cycles %.3f (code grows; branches fall)@."
    (mean !dp) (mean !dc)
