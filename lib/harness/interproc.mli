(** Extension experiment: interprocedural code placement via
    Pettis–Hansen procedure ordering, on a generated many-procedure
    program whose code exceeds the I-cache. *)

(** Generate the experiment's minic program: [n_funcs] worker functions
    plus a skewed dispatcher. *)
val gen_source : n_funcs:int -> string

type placement = { name : string; icache_misses : int; cycles : int }

type result = {
  n_funcs : int;
  total_instrs : int;
  calls : int;
  placements : placement list;
      (** declaration / Pettis–Hansen / hottest-first / adversarial *)
}

val run : ?n_funcs:int -> ?iterations:int -> unit -> result
val print : Format.formatter -> result -> unit
