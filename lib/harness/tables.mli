(** Table and figure printers: each function regenerates one table or
    figure of the paper from measured rows. *)

val section : Format.formatter -> string -> unit

(** Table 1: benchmark and data-set inventory. *)
val table1 : Format.formatter -> Runner.row list -> unit

(** Table 2: per-stage wall-clock times (worst data set per benchmark). *)
val table2 : Format.formatter -> Runner.row list -> unit

(** Table 3: the control-penalty machine model. *)
val table3 : Format.formatter -> Ba_machine.Penalties.t -> unit

(** Table 4: original penalties, lower bounds and running times. *)
val table4 : Format.formatter -> Runner.row list -> unit

(** Figure 2: normalized penalties (left) and execution times (right),
    training = testing. *)
val fig2_penalties : Format.formatter -> Runner.row list -> unit

val fig2_times : Format.formatter -> Runner.row list -> unit

(** Figure 3: the cross-validated versions. *)
val fig3_penalties : Format.formatter -> Runner.row list -> unit

val fig3_times : Format.formatter -> Runner.row list -> unit

(** Static-estimate recovery: fraction of the profile-trained penalty
    reduction recovered by training on the structural estimate
    ([balign bench --profile static]). *)
val static_recovery : Format.formatter -> Runner.row list -> unit

(** Appendix: bound-quality and solver-reliability statistics. *)
val appendix : Format.formatter -> Appendix.stats -> unit

(** Headline summary: the paper's claims vs measured numbers. *)
val summary : Format.formatter -> Runner.row list -> unit
