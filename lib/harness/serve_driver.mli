(** In-process client driver for the serve daemon: runs
    {!Ba_serve.Server.serve} on its own domain over a pair of pipes and
    exposes the client end — the harness the fault suite and the soak
    replay drive mixed good/bad traffic through.

    Keep traffic in request/response lockstep ({!send} then {!recv}):
    the transport is a pipe with finite capacity, so writing unbounded
    traffic without reading responses can deadlock both sides. *)

type t

(** [start ?config ()] forks the server loop onto a domain.  The
    returned handle owns both pipe ends. *)
val start : ?config:Ba_serve.Server.config -> unit -> t

(** Write raw bytes (possibly a corrupt frame) to the server's input. *)
val send_raw : t -> string -> unit

(** Frame and send one well-formed request. *)
val send : t -> Ba_serve.Wire.request -> unit

(** Next framed event from the server's output. *)
val recv : t -> Ba_serve.Wire.event

(** Next response, decoded; [None] once the server closed its output. *)
val recv_response : t -> (Ba_serve.Wire.client_response, string) result option

(** Flip the server's drain flag — the in-process equivalent of
    SIGTERM (the real signal path is exercised by test/serve.t). *)
val drain : t -> unit

(** Close the client→server direction (EOF / mid-request disconnect). *)
val close_input : t -> unit

(** Close the server→client direction: the client stops reading, so
    the server's next response write fails with EPIPE (SIGPIPE is
    ignored process-wide by {!start}, matching the real entry points)
    and the loop must stop with [Client_gone] — not crash. *)
val close_output : t -> unit

(** Join the server domain (closing the input first if still open) and
    return its stop reason.  [Error] carries an exception that escaped
    the loop — the soak suite asserts this never happens. *)
val stop : t -> (Ba_serve.Server.stop_reason, exn) result
