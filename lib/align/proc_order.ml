(** Pettis–Hansen procedure ordering [23] — the interprocedural half of
    code placement, which the paper leaves to future work and we provide
    as an extension.

    Procedures that call each other frequently are placed close together
    so their code does not conflict in the (direct-mapped) instruction
    cache: process call-graph edges by decreasing weight, merging the
    chains of the two endpoints with the orientation that brings the
    endpoints closest, then emit the entry procedure's chain first and
    the remaining chains by weight. *)

(** [order ~n_procs ~entry calls] computes a procedure permutation from
    dynamic call counts [(caller, callee, count)].  [entry] (typically
    [main]) always comes first. *)
let order ~n_procs ~entry (calls : (int * int * int) list) : int array =
  if entry < 0 || entry >= n_procs then invalid_arg "Proc_order.order: bad entry";
  (* undirected edge weights *)
  let w = Hashtbl.create 16 in
  List.iter
    (fun (a, b, n) ->
      if a <> b && a >= 0 && b >= 0 && a < n_procs && b < n_procs then begin
        let key = (min a b, max a b) in
        Hashtbl.replace w key (n + Option.value ~default:0 (Hashtbl.find_opt w key))
      end)
    calls;
  let edges =
    Hashtbl.fold (fun (a, b) n acc -> (n, a, b) :: acc) w []
    |> List.sort (fun (n1, a1, b1) (n2, a2, b2) ->
           if n1 <> n2 then compare n2 n1 else compare (a1, b1) (a2, b2))
  in
  (* chain per procedure; chain_of maps proc -> representative *)
  let chain_of = Array.init n_procs (fun i -> i) in
  let chains = Hashtbl.create 16 in
  for i = 0 to n_procs - 1 do
    Hashtbl.replace chains i [ i ]
  done;
  let rec rep i = if chain_of.(i) = i then i else rep chain_of.(i) in
  let index_of x l =
    let rec go k = function
      | [] -> raise Not_found
      | y :: tl -> if y = x then k else go (k + 1) tl
    in
    go 0 l
  in
  List.iter
    (fun (_, a, b) ->
      let ra = rep a and rb = rep b in
      if ra <> rb then begin
        let ca = Hashtbl.find chains ra and cb = Hashtbl.find chains rb in
        (* orient so that a sits near the junction end of its chain and b
           near the junction start of its chain *)
        let ca =
          let i = index_of a ca in
          if i < List.length ca - 1 - i then List.rev ca else ca
        in
        let cb =
          let i = index_of b cb in
          if i > List.length cb - 1 - i then List.rev cb else cb
        in
        let merged = ca @ cb in
        Hashtbl.remove chains rb;
        Hashtbl.replace chains ra merged;
        chain_of.(rb) <- ra
      end)
    edges;
  (* weight of each chain, for ordering the leftovers *)
  let chain_weight c =
    List.fold_left
      (fun acc p ->
        acc
        + Hashtbl.fold
            (fun (a, b) n acc' -> if a = p || b = p then acc' + n else acc')
            w 0)
      0 c
  in
  let entry_rep = rep entry in
  (* the entry's chain leads, but stays intact: rotating the entry to the
     front would split its hot neighbourhood across the two ends of the
     address space, which is exactly the conflict pattern the ordering is
     meant to avoid.  (Procedure entry points can live anywhere.) *)
  let entry_chain = Hashtbl.find chains entry_rep in
  let rest =
    Hashtbl.fold
      (fun r c acc -> if r = entry_rep then acc else (chain_weight c, c) :: acc)
      chains []
    |> List.sort (fun (w1, c1) (w2, c2) ->
           if w1 <> w2 then compare w2 w1 else compare c1 c2)
    |> List.concat_map snd
  in
  let result = Array.of_list (entry_chain @ rest) in
  if Array.length result <> n_procs then
    invalid_arg "Proc_order.order: malformed call graph";
  result

(** [by_weight ~n_procs ~entry calls] is the simple alternative ordering:
    procedures sorted by total dynamic call involvement, hottest first
    (after the entry).  Packs the hot set contiguously without any
    chain structure; a useful baseline for the experiments. *)
let by_weight ~n_procs ~entry (calls : (int * int * int) list) : int array =
  let weight = Array.make n_procs 0 in
  List.iter
    (fun (a, b, n) ->
      if a >= 0 && a < n_procs then weight.(a) <- weight.(a) + n;
      if b >= 0 && b < n_procs then weight.(b) <- weight.(b) + n)
    calls;
  let rest =
    List.init n_procs Fun.id
    |> List.filter (( <> ) entry)
    |> List.sort (fun a b ->
           if weight.(a) <> weight.(b) then compare weight.(b) weight.(a)
           else compare a b)
  in
  Array.of_list (entry :: rest)
