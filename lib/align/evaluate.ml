(** Analytic control-penalty evaluation of layouts, with support for
    distinct training and testing profiles (the paper's cross-validation
    study, Section 4.2).

    The layout and the static predictions are decided at compile time
    from the {e training} profile; the penalties are then accumulated
    with the {e testing} profile's transfer frequencies.  With
    [train = test] this equals the DTSP walk cost of the layout. *)

open Ba_cfg
open Ba_machine
module Profile = Ba_profile.Profile

(** [realize m cfg ~order ~train] realizes a layout using the training
    profile (predictions, fixup-arrangement choices) and returns the
    realized layout together with the per-block predictions — everything
    the pipeline simulator needs. *)
let realize (m : Model.t) (cfg : Cfg.t) ~(order : Layout.order)
    ~(train : Profile.proc) : Layout.realized * int option array =
  if not (Layout.is_valid cfg order) then
    invalid_arg "Evaluate.realize: invalid layout";
  let predicted = Profile.predictions train ~n_blocks:(Cfg.n_blocks cfg) in
  let r =
    Cost.realize m.Model.penalties cfg ~order ~predicted ~freqs:(fun l ->
        Profile.block_freqs train l)
  in
  (r, predicted)

(** [proc_penalty m cfg ~order ~train ~test] is the total control-penalty
    cycles of the procedure laid out as [order]: realization and
    predictions from [train], transfer counts from [test]. *)
let proc_penalty (m : Model.t) (cfg : Cfg.t) ~(order : Layout.order)
    ~(train : Profile.proc) ~(test : Profile.proc) : int =
  let r, predicted = realize m cfg ~order ~train in
  let total = ref 0 in
  Cfg.iter
    (fun b ->
      let l = b.Block.id in
      total :=
        !total
        + Cost.rterm_cost m.Model.penalties r.Layout.terms.(l) ~predicted:predicted.(l)
            ~freqs:(Profile.block_freqs test l))
    cfg;
  !total

(** [program_penalty m cfgs ~orders ~train ~test] sums {!proc_penalty}
    over all procedures. *)
let program_penalty (m : Model.t) (cfgs : Cfg.t array)
    ~(orders : Layout.order array) ~(train : Ba_profile.Profile.t)
    ~(test : Ba_profile.Profile.t) : int =
  if Array.length orders <> Array.length cfgs then
    invalid_arg "Evaluate.program_penalty: shape mismatch";
  let total = ref 0 in
  Array.iteri
    (fun fid cfg ->
      total :=
        !total
        + proc_penalty m cfg ~order:orders.(fid)
            ~train:(Profile.proc train fid) ~test:(Profile.proc test fid))
    cfgs;
  !total
