(** Lower bounds on the achievable control penalty of a procedure — the
    paper's near-optimality certificates. *)

open Ba_cfg
module Profile = Ba_profile.Profile

(** Valid lower bound on the penalty of {e any} layout: the exact
    optimum on small instances, the Held–Karp bound otherwise (clamped
    at 0).  [upper] is the penalty of any known layout. *)
val held_karp :
  ?config:Ba_tsp.Held_karp.config ->
  Ba_machine.Model.t ->
  Cfg.t ->
  profile:Profile.proc ->
  upper:int ->
  int

(** Assignment-problem lower bound (appendix experiment). *)
val ap : Ba_machine.Model.t -> Cfg.t -> profile:Profile.proc -> int

(** Proven minimum penalty, when the instance is small enough. *)
val exact :
  Ba_machine.Model.t -> Cfg.t -> profile:Profile.proc -> int option

(** Per-procedure Held–Karp bounds summed over a program;
    [uppers.(fid)] is a known layout penalty of procedure [fid]. *)
val program_held_karp :
  ?config:Ba_tsp.Held_karp.config ->
  Ba_machine.Model.t ->
  Cfg.t array ->
  profile:Ba_profile.Profile.t ->
  uppers:int array ->
  int
