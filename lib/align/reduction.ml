(** The paper's reduction: branch alignment → directed TSP (Section 2.2).

    Cities are the procedure's basic blocks plus one dummy city marking
    the end of the layout.  The cost of edge (B, X) is the total penalty
    incurred at B's terminator when X is laid out immediately after B,
    under the training profile — computed by {!Ba_machine.Model.edge_cost}
    (for the default control-penalty objective this is exactly
    {!Ba_machine.Cost.edge_cost}, fixup jumps included).  Edges out of the dummy carry a prohibitive
    cost except dummy → entry, which is free: a minimum directed tour
    therefore reads dummy, entry, …, last block, and its cost equals the
    minimum achievable control penalty of any layout. *)

open Ba_cfg
open Ba_machine
module Profile = Ba_profile.Profile

type t = {
  cfg : Cfg.t;
  dtsp : Ba_tsp.Dtsp.t;  (** cities 0..n−1 = blocks, city n = dummy *)
  dummy : int;  (** = [Cfg.n_blocks cfg] *)
  forbid : int;  (** cost of dummy → non-entry edges *)
}

(** [build m cfg ~profile] constructs the DTSP instance of one
    procedure under model [m]'s objective.
    @raise Invalid_argument if the profile's block count disagrees with
    the CFG (callers wanting a typed error validate first, see
    {!Ba_profile.Profile.validate}). *)
let build (m : Model.t) (cfg : Cfg.t) ~(profile : Profile.proc) : t =
  let n = Cfg.n_blocks cfg in
  if Array.length profile.Profile.freqs <> n then
    invalid_arg
      (Printf.sprintf
         "Reduction.build(%s): profile has %d blocks, CFG has %d" cfg.Cfg.name
         (Array.length profile.Profile.freqs)
         n);
  let dummy = n in
  let predicted = Profile.predictions profile ~n_blocks:n in
  let block_cost i succ =
    Model.edge_cost m (Cfg.block cfg i).Block.term ~succ
      ~predicted:predicted.(i)
      ~freqs:(Profile.block_freqs profile i)
  in
  (* The instance is emitted sparsely, without materializing the dense
     matrix: a block's penalty when followed by a non-successor is
     independent of which city follows (Model.edge_cost realizes the same
     fixup arrangement for every non-successor, and Multiway/Goto/Exit
     don't look at the successor at all — an invariant every registered
     objective preserves), so each row is its
     [block_cost i None] default plus explicit deviations at the CFG
     successors — O(out-degree) cost-model calls per block instead of
     O(n).  The diagonal is pinned to 0 (as the dense matrix had it) and
     the dummy column always carries the row default. *)
  let default = Array.make (n + 1) 0 in
  let rows = Array.make (n + 1) [] in
  (* the forbidden cost must exceed the cost of any real layout: one more
     than the sum over blocks of their worst edge; only successors can
     cost more than the row default *)
  let worst = ref 1 in
  for i = 0 to n - 1 do
    let def = block_cost i None in
    let w = ref def in
    let entries =
      match (Cfg.block cfg i).Block.term with
      | Block.Exit | Block.Multiway _ ->
          (* the invariant above is total here: these terminators ignore
             the layout successor entirely, so every column carries the
             row default — skipping the per-successor evaluation keeps a
             wide jump table O(arms) instead of O(arms²) *)
          []
      | Block.Goto _ | Block.Branch _ ->
          List.filter_map
            (fun j ->
              if j = i || j < 0 || j >= n then None
              else begin
                let c = block_cost i (Some j) in
                if c > !w then w := c;
                if c = def then None else Some (j, c)
              end)
            (Block.distinct_successors (Cfg.block cfg i))
    in
    default.(i) <- def;
    rows.(i) <- (if def = 0 then entries else (i, 0) :: entries);
    worst := !worst + !w
  done;
  let forbid = !worst in
  default.(dummy) <- forbid;
  rows.(dummy) <- [ (cfg.Cfg.entry, 0); (dummy, 0) ];
  let dtsp = Ba_tsp.Dtsp.of_rows ~n:(n + 1) ~default rows in
  { cfg; dtsp; dummy; forbid }

(** [tour_of_order t order] is the directed tour (starting at the dummy)
    corresponding to a layout. *)
let tour_of_order t (order : Layout.order) : int array =
  Array.append [| t.dummy |] order

(** [order_of_tour t tour] recovers a layout from a directed tour: drop
    the dummy and rotate the remaining cycle so the entry block is first.
    For tours produced by the solver this is exactly the walk after the
    dummy; for degenerate tours (a forbidden dummy edge survived) it is
    still a valid layout, just not the one the tour cost describes.
    @raise Invalid_argument if the tour is not a permutation of the
    cities. *)
let order_of_tour t (tour : int array) : Layout.order =
  if not (Ba_tsp.Dtsp.is_tour t.dtsp tour) then
    invalid_arg "Reduction.order_of_tour: not a tour";
  let rot = Ba_tsp.Dtsp.rotate_to tour t.dummy in
  let order = Array.sub rot 1 (Array.length rot - 1) in
  if order.(0) = t.cfg.Cfg.entry then order
  else
    (* rotate the dummy-free cycle so the entry leads *)
    Ba_tsp.Dtsp.rotate_to order t.cfg.Cfg.entry

(** [layout_cost t order] is the DTSP walk cost of a layout — by
    construction equal to the analytic control penalty of the layout
    under the profile the instance was built from (a property the test
    suite checks against {!Evaluate}). *)
let layout_cost t (order : Layout.order) : int =
  Ba_tsp.Dtsp.tour_cost t.dtsp (tour_of_order t order)
