(** The paper's TSP-based branch aligner.

    Build the DTSP instance of the procedure ({!Reduction}), solve it
    near-optimally — exactly (Held–Karp DP) when the instance is small,
    with iterated 3-Opt on the symmetrized instance otherwise — and read
    the layout off the best tour. *)

open Ba_cfg
open Ba_tsp
module Profile = Ba_profile.Profile

type config = {
  solver : Iterated.config;  (** iterated 3-Opt parameters *)
  exact_below : int;
      (** solve instances with at most this many cities (blocks + dummy)
          exactly by DP; 0 disables exact solving *)
}

let default = { solver = Iterated.default; exact_below = 13 }

type result = {
  order : Layout.order;
  cost : int;  (** DTSP walk cost = modelled penalty under the training profile *)
  exact : bool;  (** the instance was solved to proven optimality *)
  stats : Iterated.stats option;  (** heuristic solver statistics, if used *)
}

(** [solve_instance ?config inst] solves a pre-built reduction instance
    (lets callers time matrix construction and solving separately). *)
let solve_instance ?(config = default) (inst : Reduction.t) : result =
  let n_cities = inst.Reduction.dtsp.Dtsp.n in
  if n_cities <= min config.exact_below Exact.max_n then begin
    let tour, cost = Exact.solve inst.Reduction.dtsp in
    let order = Reduction.order_of_tour inst tour in
    { order; cost; exact = true; stats = None }
  end
  else begin
    let tour, stats = Iterated.solve ~config:config.solver inst.Reduction.dtsp in
    let order = Reduction.order_of_tour inst tour in
    (* recompute from the layout in case the tour was degenerate *)
    let cost = Reduction.layout_cost inst order in
    { order; cost; exact = false; stats = Some stats }
  end

(** [align ?config p cfg ~profile] aligns one procedure: build the
    reduction instance, then solve it. *)
let align ?config (p : Ba_machine.Penalties.t) (cfg : Cfg.t)
    ~(profile : Profile.proc) : result =
  solve_instance ?config (Reduction.build p cfg ~profile)
