(** The paper's TSP-based branch aligner.

    Build the DTSP instance of the procedure ({!Reduction}), solve it
    near-optimally — exactly (Held–Karp DP) when the instance is small,
    with iterated 3-Opt on the symmetrized instance otherwise — and read
    the layout off the best tour.

    The solver runs under a {!Ba_robust.Budget}: when the wall-clock
    deadline or move allowance runs out the aligner still returns a valid
    layout (the best one found, or the identity layout if the budget was
    exhausted on arrival) and records the degradation reason in the
    result, so callers can fall back to a cheaper aligner. *)

open Ba_cfg
open Ba_tsp
module Profile = Ba_profile.Profile
module Budget = Ba_robust.Budget

type config = {
  solver : Iterated.config;  (** iterated 3-Opt parameters (incl. budgets) *)
  exact_below : int;
      (** solve instances with at most this many cities (blocks + dummy)
          exactly by DP; 0 disables exact solving *)
}

let default = { solver = Iterated.default; exact_below = 13 }

type result = {
  order : Layout.order;
  cost : int;  (** DTSP walk cost = modelled penalty under the training profile *)
  exact : bool;  (** the instance was solved to proven optimality *)
  stats : Iterated.stats option;  (** heuristic solver statistics, if used *)
  degraded : Ba_robust.Errors.t option;
      (** why the result is weaker than requested (budget exhaustion);
          [None] for a full-strength solve *)
}

let budget_of_config (config : config) =
  Budget.create ?deadline_ms:config.solver.Iterated.deadline_ms
    ?max_moves:config.solver.Iterated.max_moves ()

(** [solve_instance ?config ?rng ?budget inst] solves a pre-built
    reduction instance (lets callers time matrix construction and
    solving separately).  [rng], when given, is the task's own random
    stream (see {!Ba_engine.Task}); by default the solver derives a
    deterministic state from its config and the instance.  Never raises
    on budget exhaustion: a valid, possibly degraded layout always
    comes back. *)
let solve_instance ?(config = default) ?rng ?budget ?initial
    (inst : Reduction.t) : result =
  let budget =
    match budget with Some b -> b | None -> budget_of_config config
  in
  if Budget.exhausted budget then begin
    (* no budget at all: hand back the identity layout, flagged *)
    Ba_obs.Metrics.incr Ba_obs.Metrics.Budget_exhaustions;
    let order = Layout.identity inst.Reduction.cfg in
    {
      order;
      cost = Reduction.layout_cost inst order;
      exact = false;
      stats = None;
      degraded = Some (Budget.timeout_error budget);
    }
  end
  else begin
    let n_cities = inst.Reduction.dtsp.Dtsp.n in
    if n_cities <= min config.exact_below Exact.max_n then begin
      let tour, cost = Exact.solve inst.Reduction.dtsp in
      Ba_obs.Metrics.incr Ba_obs.Metrics.Exact_solves;
      let order = Reduction.order_of_tour inst tour in
      { order; cost; exact = true; stats = None; degraded = None }
    end
    else begin
      (* warm start: a previous layout of the same CFG (the serve
         cache's tour) seeds run 0; orders that fail validity (stale
         or poisoned) are ignored rather than trusted *)
      let initial =
        match initial with
        | Some order when Layout.is_valid inst.Reduction.cfg order ->
            Some (Reduction.tour_of_order inst order)
        | _ -> None
      in
      let tour, stats =
        Iterated.solve ~config:config.solver ?rng ~budget ?initial
          inst.Reduction.dtsp
      in
      let order = Reduction.order_of_tour inst tour in
      (* recompute from the layout in case the tour was degenerate *)
      let cost = Reduction.layout_cost inst order in
      {
        order;
        cost;
        exact = false;
        stats = Some stats;
        degraded =
          (if stats.Iterated.timed_out then Some (Budget.timeout_error budget)
           else None);
      }
    end
  end

(** [align ?config ?rng ?budget m cfg ~profile] aligns one procedure:
    build the reduction instance under the model's objective, then solve
    it. *)
let align ?config ?rng ?budget ?initial (m : Ba_machine.Model.t)
    (cfg : Cfg.t) ~(profile : Profile.proc) : result =
  solve_instance ?config ?rng ?budget ?initial (Reduction.build m cfg ~profile)
