(** Lower bounds on the achievable control penalty of a procedure.

    The paper's analysis tool: the Held–Karp bound of the (symmetrized)
    DTSP instance lower-bounds every possible layout's penalty, so the
    gap between an aligner's result and this bound certifies
    near-optimality without knowing the optimum.  The assignment-problem
    bound and the exact optimum (small instances only) support the
    appendix experiment. *)

open Ba_cfg
open Ba_tsp
module Profile = Ba_profile.Profile

(** [held_karp ?config m cfg ~profile ~upper] is a valid lower bound on
    the control penalty of {e any} layout of [cfg] under [profile].
    [upper] is the penalty of any known layout (step scaling only).
    Clamped at 0 since penalties are non-negative. *)
let held_karp ?config (m : Ba_machine.Model.t) (cfg : Cfg.t)
    ~(profile : Profile.proc) ~(upper : int) : int =
  let inst = Reduction.build m cfg ~profile in
  if inst.Reduction.dtsp.Dtsp.n <= Exact.max_n then
    (* small instances: the exact optimum is the perfect bound *)
    snd (Exact.solve inst.Reduction.dtsp)
  else
    max 0 (Held_karp.directed_bound ?config inst.Reduction.dtsp ~upper_bound:upper)

(** [ap p cfg ~profile] is the assignment-problem lower bound of the
    procedure's DTSP instance (appendix experiment). *)
let ap (m : Ba_machine.Model.t) (cfg : Cfg.t) ~(profile : Profile.proc) : int
    =
  let inst = Reduction.build m cfg ~profile in
  max 0 (Hungarian.ap_bound inst.Reduction.dtsp)

(** [exact p cfg ~profile] is the proven minimum control penalty, when
    the instance is small enough for the DP ([None] otherwise). *)
let exact (m : Ba_machine.Model.t) (cfg : Cfg.t) ~(profile : Profile.proc) :
    int option =
  let inst = Reduction.build m cfg ~profile in
  if inst.Reduction.dtsp.Dtsp.n <= Exact.max_n then
    Some (snd (Exact.solve inst.Reduction.dtsp))
  else None

(** [program_held_karp p cfgs ~profile ~uppers] sums per-procedure
    Held–Karp bounds; [uppers.(fid)] is a known layout penalty of
    procedure [fid]. *)
let program_held_karp ?config (m : Ba_machine.Model.t) (cfgs : Cfg.t array)
    ~(profile : Ba_profile.Profile.t) ~(uppers : int array) : int =
  let total = ref 0 in
  Array.iteri
    (fun fid cfg ->
      total :=
        !total
        + held_karp ?config m cfg ~profile:(Profile.proc profile fid)
            ~upper:uppers.(fid))
    cfgs;
  !total
