(** Chain-building machinery shared by the greedy aligners: link blocks
    into disjoint chains edge by edge, then concatenate chains (entry
    chain first, then strongest-connected). *)

open Ba_cfg
module Profile = Ba_profile.Profile

type t

val create : Cfg.t -> t

(** [try_link t a b] links chain tail [a] → chain head [b] when
    permissible (no slot conflicts, no cycle, [b] not the entry);
    returns whether the link was made. *)
val try_link : t -> int -> int -> bool

(** The chains as block lists, heads first. *)
val chains : t -> int list list

(** Concatenate the chains into a layout: entry chain first, then
    repeatedly the chain with the largest [weight] to already-placed
    blocks. *)
val concat_chains :
  t -> weight:(placed:bool array -> int list -> int) -> Layout.order

(** The standard connection weight: profiled transfers between the
    placed set and the chain, either direction. *)
val profile_weight : Profile.proc -> placed:bool array -> int list -> int
