(** The paper's TSP-based branch aligner: build the DTSP instance, solve
    it (exactly on small instances, iterated 3-Opt otherwise), read the
    layout off the best tour. *)

open Ba_cfg
module Profile = Ba_profile.Profile

type config = {
  solver : Ba_tsp.Iterated.config;
  exact_below : int;
      (** solve instances with at most this many cities exactly;
          0 disables exact solving *)
}

val default : config

type result = {
  order : Layout.order;
  cost : int;  (** modelled penalty under the training profile *)
  exact : bool;  (** solved to proven optimality *)
  stats : Ba_tsp.Iterated.stats option;  (** when the heuristic ran *)
}

(** Solve a pre-built reduction instance (lets callers time matrix
    construction and solving separately). *)
val solve_instance : ?config:config -> Reduction.t -> result

(** Align one procedure. *)
val align :
  ?config:config ->
  Ba_machine.Penalties.t ->
  Cfg.t ->
  profile:Profile.proc ->
  result
