(** The paper's TSP-based branch aligner: build the DTSP instance, solve
    it (exactly on small instances, iterated 3-Opt otherwise), read the
    layout off the best tour.  Runs under a {!Ba_robust.Budget}: on
    exhaustion a valid layout still comes back, with the degradation
    reason recorded in the result. *)

open Ba_cfg
module Profile = Ba_profile.Profile

type config = {
  solver : Ba_tsp.Iterated.config;  (** includes the solver budgets *)
  exact_below : int;
      (** solve instances with at most this many cities exactly;
          0 disables exact solving *)
}

val default : config

type result = {
  order : Layout.order;
  cost : int;  (** modelled penalty under the training profile *)
  exact : bool;  (** solved to proven optimality *)
  stats : Ba_tsp.Iterated.stats option;  (** when the heuristic ran *)
  degraded : Ba_robust.Errors.t option;
      (** why the result is weaker than requested; [None] when full *)
}

(** Solve a pre-built reduction instance (lets callers time matrix
    construction and solving separately).  [rng], when given, is the
    task's own random stream; the default derives a deterministic state
    from the config and the instance.  Never raises on budget
    exhaustion.  [initial], when given and valid for the instance's
    CFG, seeds run 0 of the iterated solver with that layout's tour
    instead of the identity — the warm-start hook for incremental
    re-alignment (invalid orders are silently ignored). *)
val solve_instance :
  ?config:config ->
  ?rng:Random.State.t ->
  ?budget:Ba_robust.Budget.t ->
  ?initial:Layout.order ->
  Reduction.t ->
  result

(** Align one procedure under the model's objective. *)
val align :
  ?config:config ->
  ?rng:Random.State.t ->
  ?budget:Ba_robust.Budget.t ->
  ?initial:Layout.order ->
  Ba_machine.Model.t ->
  Cfg.t ->
  profile:Profile.proc ->
  result
