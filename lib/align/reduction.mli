(** The paper's reduction (Section 2.2): branch alignment → directed
    TSP.  Cities are the blocks plus a dummy end-of-layout city; the
    cost of edge (B, X) is the penalty at B's terminator when X is its
    layout successor under the training profile; a minimum directed tour
    is an optimal alignment. *)

open Ba_cfg
module Profile = Ba_profile.Profile

type t = {
  cfg : Cfg.t;
  dtsp : Ba_tsp.Dtsp.t;  (** cities 0..n−1 = blocks, city n = dummy *)
  dummy : int;
  forbid : int;  (** cost on dummy → non-entry edges *)
}

(** Build the DTSP instance of one procedure under a model's
    objective. *)
val build : Ba_machine.Model.t -> Cfg.t -> profile:Profile.proc -> t

(** Layout → the corresponding directed tour (dummy first). *)
val tour_of_order : t -> Layout.order -> int array

(** Directed tour → layout: drop the dummy, rotate the entry first.
    @raise Invalid_argument if the tour is not a permutation. *)
val order_of_tour : t -> int array -> Layout.order

(** DTSP walk cost of a layout — equal, by construction, to its analytic
    control penalty under the instance's profile. *)
val layout_cost : t -> Layout.order -> int
