(** Calder–Grunwald-style greedy branch alignment [2].

    Two improvements over Pettis–Hansen, both reproduced here:

    - edges are prioritized by {e modelled penalty savings} rather than by
      raw frequency: the priority of edge (a, b) is the cost of block [a]
      when [b] is {e not} its layout successor minus its cost when it is
      (so, e.g., edges out of indirect branches — whose cost is layout
      independent — get zero priority);
    - an optional bounded exhaustive search over the blocks touched by the
      hottest edges (they searched the 15 hottest; we force each
      permutation of those blocks as an initial chain and complete
      greedily, keeping the cheapest result). *)

open Ba_cfg
open Ba_machine
module Profile = Ba_profile.Profile

(** [savings m cfg ~profile src dst] is the modelled benefit of placing
    [dst] right after [src]: penalty at [src] with an unrelated layout
    successor minus penalty with [dst] as successor. *)
let savings (m : Model.t) (cfg : Cfg.t) ~(profile : Profile.proc) src dst =
  let term = (Cfg.block cfg src).Block.term in
  let predicted = Profile.predicted profile src in
  let freqs = Profile.block_freqs profile src in
  Model.edge_cost m term ~succ:None ~predicted ~freqs
  - Model.edge_cost m term ~succ:(Some dst) ~predicted ~freqs

(** Profiled edges sorted by decreasing modelled savings (ties by
    frequency, then (src, dst)). *)
let edges_by_savings (m : Model.t) (cfg : Cfg.t) ~(profile : Profile.proc) =
  let edges = ref [] in
  Array.iteri
    (fun src row ->
      Array.iter
        (fun (dst, n) ->
          if src <> dst then
            edges := (savings m cfg ~profile src dst, n, src, dst) :: !edges)
        row)
    profile.Profile.freqs;
  List.sort
    (fun (s1, n1, a1, b1) (s2, n2, a2, b2) ->
      if s1 <> s2 then compare s2 s1
      else if n1 <> n2 then compare n2 n1
      else compare (a1, b1) (a2, b2))
    !edges

(** [align m cfg ~profile] is the cost-model greedy layout. *)
let align (m : Model.t) (cfg : Cfg.t) ~(profile : Profile.proc) :
    Layout.order =
  let t = Chain.create cfg in
  List.iter
    (fun (s, _, src, dst) -> if s > 0 then ignore (Chain.try_link t src dst))
    (edges_by_savings m cfg ~profile);
  Chain.concat_chains t ~weight:(Chain.profile_weight profile)

(* ------------------------------------------------------------------ *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
        l

(** [align_exhaustive ?top_edges ?max_blocks m cfg ~profile] augments
    {!align} with the bounded exhaustive search: take the blocks touched
    by the [top_edges] highest-savings edges (skipping the search if more
    than [max_blocks] are touched), try every permutation of them as a
    forced initial chain, complete each greedily, and keep the layout
    with the smallest modelled penalty. *)
let align_exhaustive ?(top_edges = 15) ?(max_blocks = 6) (m : Model.t)
    (cfg : Cfg.t) ~(profile : Profile.proc) : Layout.order =
  let edges = edges_by_savings m cfg ~profile in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  let hot = take top_edges edges in
  let touched =
    List.concat_map (fun (_, _, a, b) -> [ a; b ]) hot |> List.sort_uniq compare
  in
  if List.length touched > max_blocks || touched = [] then align m cfg ~profile
  else begin
    let evaluate order =
      let predicted =
        Profile.predictions profile ~n_blocks:(Cfg.n_blocks cfg)
      in
      let lsucc = Layout.layout_successor order in
      let total = ref 0 in
      Cfg.iter
        (fun b ->
          let l = b.Block.id in
          total :=
            !total
            + Model.edge_cost m b.Block.term ~succ:lsucc.(l)
                ~predicted:predicted.(l)
                ~freqs:(Profile.block_freqs profile l))
        cfg;
      !total
    in
    let best = ref None in
    List.iter
      (fun perm ->
        let t = Chain.create cfg in
        (* force the permutation as chain links where permissible *)
        let rec link = function
          | a :: (b :: _ as tl) ->
              ignore (Chain.try_link t a b);
              link tl
          | _ -> ()
        in
        link perm;
        List.iter
          (fun (s, _, src, dst) ->
            if s > 0 then ignore (Chain.try_link t src dst))
          edges;
        let order = Chain.concat_chains t ~weight:(Chain.profile_weight profile) in
        let cost = evaluate order in
        match !best with
        | Some (bc, _) when bc <= cost -> ()
        | _ -> best := Some (cost, order))
      (permutations touched);
    match !best with Some (_, o) -> o | None -> align m cfg ~profile
  end
