(** Chain-building machinery shared by the greedy aligners
    (Pettis–Hansen [23] and Calder–Grunwald [2]).

    Blocks are linked into disjoint chains by considering candidate edges
    in priority order; an edge (a, b) is accepted when [a] is still a
    chain tail, [b] a chain head, linking does not close a cycle, and [b]
    is not the procedure entry (the entry must start the layout).
    Completed chains are then concatenated: the entry chain first, then
    repeatedly the chain most strongly connected to the blocks already
    placed. *)

open Ba_cfg
module Profile = Ba_profile.Profile

type t = {
  n : int;
  entry : Block.label;
  next : int array;  (** successor within chain, -1 at tail *)
  prev : int array;  (** predecessor within chain, -1 at head *)
  parent : int array;  (** union-find *)
}

let create (cfg : Cfg.t) =
  let n = Cfg.n_blocks cfg in
  {
    n;
    entry = cfg.Cfg.entry;
    next = Array.make n (-1);
    prev = Array.make n (-1);
    parent = Array.init n (fun i -> i);
  }

let rec find t i =
  if t.parent.(i) = i then i
  else begin
    let r = find t t.parent.(i) in
    t.parent.(i) <- r;
    r
  end

(** [try_link t a b] links chains tail [a] → head [b] if permissible;
    returns whether the link was made. *)
let try_link t a b =
  if
    a <> b
    && b <> t.entry
    && t.next.(a) < 0
    && t.prev.(b) < 0
    && find t a <> find t b
  then begin
    t.next.(a) <- b;
    t.prev.(b) <- a;
    t.parent.(find t a) <- find t b;
    true
  end
  else false

(** [chains t] lists the chains as block lists, heads first. *)
let chains t =
  let out = ref [] in
  for h = t.n - 1 downto 0 do
    if t.prev.(h) < 0 then begin
      let chain = ref [] and cur = ref h in
      while !cur >= 0 do
        chain := !cur :: !chain;
        cur := t.next.(!cur)
      done;
      out := List.rev !chain :: !out
    end
  done;
  !out

(** [concat_chains t ~weight] produces the final layout order:
    the entry's chain first, then repeatedly the chain with the largest
    connection weight to already-placed blocks, where
    [weight placed candidate_chain] sums profile frequencies between the
    placed set and the chain (both directions).  Chains never connected
    to placed code are appended in head order. *)
let concat_chains t ~(weight : placed:bool array -> int list -> int) :
    Layout.order =
  let all = chains t in
  let entry_chain, rest =
    match List.partition (fun c -> List.mem t.entry c) all with
    | [ e ], rest -> (e, rest)
    | _ -> invalid_arg "Chain.concat_chains: entry chain not unique"
  in
  let placed = Array.make t.n false in
  let order = ref (List.rev entry_chain) in
  List.iter (fun b -> placed.(b) <- true) entry_chain;
  let remaining = ref rest in
  while !remaining <> [] do
    let scored =
      List.map (fun c -> (weight ~placed c, c)) !remaining
    in
    let best =
      List.fold_left
        (fun acc (w, c) ->
          match acc with
          | Some (bw, _) when bw >= w -> acc
          | _ -> Some (w, c))
        None scored
    in
    let _, chosen = Option.get best in
    List.iter
      (fun b ->
        placed.(b) <- true;
        order := b :: !order)
      chosen;
    remaining := List.filter (fun c -> c != chosen) !remaining
  done;
  Array.of_list (List.rev !order)

(** Connection weight used by both greedy aligners: total profiled
    transfers between the placed set and the chain, either direction. *)
let profile_weight (profile : Profile.proc) ~placed (chain : int list) =
  let in_chain = Hashtbl.create 8 in
  List.iter (fun b -> Hashtbl.replace in_chain b ()) chain;
  let w = ref 0 in
  Array.iteri
    (fun src row ->
      Array.iter
        (fun (dst, n) ->
          let src_placed = placed.(src) and dst_in = Hashtbl.mem in_chain dst in
          let dst_placed = placed.(dst) and src_in = Hashtbl.mem in_chain src in
          if (src_placed && dst_in) || (dst_placed && src_in) then w := !w + n)
        row)
    profile.Profile.freqs;
  !w
