(** Pettis–Hansen procedure ordering — interprocedural placement (the
    paper's future work): place procedures that call each other
    frequently close together to reduce I-cache conflicts. *)

(** Procedure permutation from dynamic call counts
    [(caller, callee, count)]; the entry procedure's chain leads.
    @raise Invalid_argument on a bad entry id. *)
val order : n_procs:int -> entry:int -> (int * int * int) list -> int array

(** Simple alternative: entry first, then procedures by total dynamic
    call involvement, hottest first. *)
val by_weight : n_procs:int -> entry:int -> (int * int * int) list -> int array
