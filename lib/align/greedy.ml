(** Pettis–Hansen-style greedy branch alignment [23].

    The classic bottom-up positioning algorithm the paper (and most
    commercial tools of its era) uses as the baseline: consider CFG edges
    in decreasing execution-frequency order and chain the endpoint blocks
    when both layout slots are free and no cycle would form; then
    concatenate the chains, entry chain first, strongest-connected chain
    next.  Priorities use raw frequencies only — no machine cost model —
    which is exactly the handicap the paper points out. *)

open Ba_cfg
module Profile = Ba_profile.Profile

(** Profiled edges, highest frequency first; ties broken by (src, dst)
    for determinism.  Self edges can never be layout edges and are
    dropped. *)
let edges_by_frequency (profile : Profile.proc) =
  let edges = ref [] in
  Array.iteri
    (fun src row ->
      Array.iter
        (fun (dst, n) -> if src <> dst then edges := (n, src, dst) :: !edges)
        row)
    profile.Profile.freqs;
  List.sort
    (fun (n1, s1, d1) (n2, s2, d2) ->
      if n1 <> n2 then compare n2 n1 else compare (s1, d1) (s2, d2))
    !edges

(** [align cfg ~profile] computes the greedy layout. *)
let align (cfg : Cfg.t) ~(profile : Profile.proc) : Layout.order =
  let t = Chain.create cfg in
  List.iter
    (fun (_, src, dst) -> ignore (Chain.try_link t src dst))
    (edges_by_frequency profile);
  Chain.concat_chains t ~weight:(Chain.profile_weight profile)
