(** Whole-program alignment driver: pick a layout per procedure, realize
    against the training profile, evaluate analytically or simulate on
    the full machine model.

    Per-procedure work is expressed as {!Ba_engine.Task} values run
    under a pluggable {!Ba_engine.Executor} — [Seq] by default, or a
    fixed OCaml 5 domain pool — with output bit-identical at any job
    count (deterministic merge by procedure index, per-task RNGs; see
    docs/ARCHITECTURE.md). *)

open Ba_cfg
open Ba_machine
module Profile = Ba_profile.Profile

(** Alignment method. *)
type method_ =
  | Original  (** keep the front end's block order *)
  | Greedy  (** Pettis–Hansen frequency-greedy *)
  | Calder  (** Calder–Grunwald cost-model greedy *)
  | Calder_exhaustive  (** … with the bounded exhaustive prefix search *)
  | Btfnt  (** chain-greedy for BTFNT-class machines (footnote 3) *)
  | Tsp of Tsp_align.config  (** the paper's DTSP-based aligner *)

val method_name : method_ -> string

(** The pipeline seed per-task RNGs are derived from (the solver seed
    for TSP, 0 for the deterministic methods). *)
val method_seed : method_ -> int

(** A fully aligned and realized program. *)
type aligned = {
  cfgs : Cfg.t array;
  orders : Layout.order array;
  realized : Layout.realized array;
  predicted : int option array array;  (** static predictions (training) *)
  addr : Addr.t;  (** code addresses under this layout *)
  method_ : method_;
}

(** Lay out one procedure.  [rng] is the enclosing task's stream; only
    the TSP solver draws from it. *)
val align_proc :
  ?rng:Random.State.t ->
  method_ ->
  Model.t ->
  Cfg.t ->
  profile:Profile.proc ->
  Layout.order

(** Align a whole program: one task per procedure, run under
    [executor] (default [Seq]).  The result does not depend on the
    executor. *)
val align :
  ?executor:Ba_engine.Executor.t ->
  method_ ->
  Model.t ->
  Cfg.t array ->
  train:Ba_profile.Profile.t ->
  aligned

(** Modelled control penalty on the [test] workload's profile, on the
    model's physical penalties. *)
val analytic_penalty : Model.t -> aligned -> test:Ba_profile.Profile.t -> int

(** Scaled Ext-TSP score of the aligned program on the [test] profile
    (higher is better), from the byte-accurate addresses of the realized
    layout.  Defined for layouts produced under any model — the bench
    reports it next to the Alpha penalty for every aligner.  [params]
    defaults to {!Ba_machine.Model.default_ext_tsp}; pass
    [Model.ext_tsp_params model] to score under a model's own window. *)
val ext_tsp_score :
  ?params:Model.ext_tsp -> aligned -> test:Ba_profile.Profile.t -> int

(** Replay an execution through the full machine model ([run] feeds
    trace events into the provided sink). *)
val simulate :
  ?cycles_config:Cycles.config ->
  Model.t ->
  aligned ->
  run:(Trace.sink -> unit) ->
  Cycles.result

(** Verify every realized layout is semantically faithful to its CFG. *)
val check : aligned -> (unit, string) result

(** {1 Checked alignment: validation, budgets, graceful degradation} *)

(** One procedure that was degraded to a cheaper method. *)
type fallback = {
  proc : int;
  proc_name : string;
  requested : method_;
  used : method_;
  reason : Ba_robust.Errors.t;
}

(** A checked alignment plus the record of every degradation. *)
type report = { aligned : aligned; fallbacks : fallback list }

val pp_fallback : Format.formatter -> fallback -> unit

(** The deterministic degradation chain of a method (most capable
    first): TSP → Calder → Greedy → Original. *)
val chain : method_ -> method_ list

(** [align_checked ?executor ?deadline_ms ?fallback m model cfgs ~train]
    validates the CFGs and the profile, then lays out every procedure
    under a shared wall-clock budget, degrading deterministically along
    {!chain} when a method times out, fails, or produces an unfaithful
    layout.  Degradation is per-task: one procedure falling back never
    degrades its siblings.  With [fallback:false] the first degradation
    (lowest procedure index) is returned as an error.  Never raises;
    every returned layout passes {!Ba_cfg.Layout.check_semantics}.

    The returned value is independent of the executor whenever the
    budget does not expire mid-run (unlimited or already-exhausted
    budgets; see docs/ARCHITECTURE.md).

    [warm_start], when given, supplies a previous layout per procedure
    index to seed the TSP solver's run 0 (the serve cache's
    incremental re-alignment hook); deterministic methods and fallback
    attempts ignore it, and invalid orders are discarded rather than
    trusted. *)
val align_checked :
  ?executor:Ba_engine.Executor.t ->
  ?deadline_ms:int ->
  ?fallback:bool ->
  ?warm_start:(int -> Ba_cfg.Layout.order option) ->
  method_ ->
  Model.t ->
  Cfg.t array ->
  train:Ba_profile.Profile.t ->
  (report, Ba_robust.Errors.t) result
