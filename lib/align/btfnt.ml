(** BTFNT evaluation: backward-taken / forward-not-taken static
    prediction.

    The paper's footnote 3 points out that machines predicting by branch
    direction (backward taken, forward not-taken) violate the reduction's
    assumption that the penalty at a block depends only on its layout
    successor: under BTFNT the prediction itself depends on where the
    target was placed.  The DTSP reduction therefore cannot target such
    machines directly — but we can still {e evaluate} any layout under
    BTFNT hardware, which is what this module does, and the experiment in
    the harness measures how much of the profile-trained layouts' benefit
    survives on such a machine.

    Rules: a conditional's taken arm is predicted iff its block starts at
    a lower layout position than the branch (a backward branch);
    unconditional jumps are unavoidable ([uncond_taken]); indirect
    branches have no static direction, so without profile hints every
    indirect transfer pays [multi_mispredict]. *)

open Ba_cfg
open Ba_machine
module Profile = Ba_profile.Profile

(** [prediction ~positions ~src rt] is the BTFNT-predicted destination of
    the realized conditional [rt] at block [src], or [None] when the
    hardware has no prediction (indirect branches). *)
let prediction ~(positions : int array) ~(src : int) (rt : Layout.rterm) :
    int option =
  match rt with
  | Layout.R_cond { taken; fall; _ } ->
      (* a self-loop jumps back to the top of its own block: backward *)
      if positions.(taken) <= positions.(src) then Some taken else Some fall
  | _ -> None

(** [align m cfg ~profile] is a chain-greedy aligner for BTFNT-class
    machines.  The DTSP reduction cannot target them (the prediction
    depends on the layout), but a greedy chainer can: edges are linked
    by the savings of making [dst] the fall-through successor of [src]
    under the static not-taken default ([predicted:None] resolves
    conditionals to their fall arm) — exactly the prediction an
    adjacent, forward target enjoys under BTFNT.  Deterministic. *)
let align (m : Model.t) (cfg : Cfg.t) ~(profile : Profile.proc) : Layout.order =
  let p = m.Model.penalties in
  let savings src dst =
    let term = (Cfg.block cfg src).Block.term in
    let freqs = Profile.block_freqs profile src in
    Cost.edge_cost p term ~succ:None ~predicted:None ~freqs
    - Cost.edge_cost p term ~succ:(Some dst) ~predicted:None ~freqs
  in
  let edges = ref [] in
  Array.iteri
    (fun src row ->
      Array.iter
        (fun (dst, n) ->
          if src <> dst then edges := (savings src dst, n, src, dst) :: !edges)
        row)
    profile.Profile.freqs;
  let edges =
    List.sort
      (fun (s1, n1, a1, b1) (s2, n2, a2, b2) ->
        if s1 <> s2 then compare s2 s1
        else if n1 <> n2 then compare n2 n1
        else compare (a1, b1) (a2, b2))
      !edges
  in
  let t = Chain.create cfg in
  List.iter
    (fun (s, _, src, dst) -> if s > 0 then ignore (Chain.try_link t src dst))
    edges;
  Chain.concat_chains t ~weight:(Chain.profile_weight profile)

(** [proc_penalty p cfg ~realized ~test] is the total control penalty of
    the realized layout on the [test] profile under BTFNT hardware. *)
let proc_penalty (p : Penalties.t) (cfg : Cfg.t)
    ~(realized : Layout.realized) ~(test : Profile.proc) : int =
  let positions = Layout.positions realized.Layout.order in
  let total = ref 0 in
  Cfg.iter
    (fun b ->
      let src = b.Block.id in
      let rt = realized.Layout.terms.(src) in
      Array.iter
        (fun (dst, n) ->
          if n > 0 then
            let cycles =
              match rt with
              | Layout.R_exit -> 0
              | Layout.R_multi _ -> p.Penalties.multi_mispredict
              | Layout.R_cond _ ->
                  let predicted = prediction ~positions ~src rt in
                  Cost.transfer_penalty p rt ~predicted ~dest:dst
              | Layout.R_fall _ | Layout.R_jump _ ->
                  Cost.transfer_penalty p rt ~predicted:None ~dest:dst
            in
            total := !total + (n * cycles))
        (Profile.block_freqs test src))
    cfg;
  !total

(** [program_penalty p cfgs ~realized ~test] sums over procedures. *)
let program_penalty (p : Penalties.t) (cfgs : Cfg.t array)
    ~(realized : Layout.realized array) ~(test : Ba_profile.Profile.t) : int =
  let total = ref 0 in
  Array.iteri
    (fun fid cfg ->
      total :=
        !total
        + proc_penalty p cfg ~realized:realized.(fid)
            ~test:(Profile.proc test fid))
    cfgs;
  !total
