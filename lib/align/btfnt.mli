(** BTFNT evaluation — backward-taken / forward-not-taken static
    prediction, the architecture class of the paper's footnote 3 whose
    prediction depends on the layout itself and therefore breaks the
    DTSP reduction's assumption.  Layouts can still be {e evaluated}
    under it. *)

open Ba_cfg
open Ba_machine
module Profile = Ba_profile.Profile

(** BTFNT-predicted destination of a realized conditional ([None] for
    terminators the hardware cannot predict). *)
val prediction : positions:int array -> src:int -> Layout.rterm -> int option

(** Chain-greedy aligner for BTFNT-class machines: links edges by the
    savings of the fall-through adjacency under the static not-taken
    default, on the model's physical penalties.  Deterministic. *)
val align : Model.t -> Cfg.t -> profile:Profile.proc -> Layout.order

(** Total control penalty of a realized layout on the [test] profile
    under BTFNT hardware (indirect branches always mispredict). *)
val proc_penalty :
  Penalties.t -> Cfg.t -> realized:Layout.realized -> test:Profile.proc -> int

(** Sum over procedures. *)
val program_penalty :
  Penalties.t ->
  Cfg.t array ->
  realized:Layout.realized array ->
  test:Ba_profile.Profile.t ->
  int
