(** Calder–Grunwald-style greedy branch alignment: edges prioritized by
    modelled penalty savings instead of raw frequency, plus an optional
    bounded exhaustive search over the blocks touched by the hottest
    edges. *)

open Ba_cfg
module Profile = Ba_profile.Profile

(** Modelled benefit of placing [dst] right after [src]: cost with an
    unrelated successor minus cost with [dst] as successor. *)
val savings :
  Ba_machine.Model.t -> Cfg.t -> profile:Profile.proc -> int -> int -> int

(** Profiled edges as [(savings, freq, src, dst)], by decreasing
    savings. *)
val edges_by_savings :
  Ba_machine.Model.t ->
  Cfg.t ->
  profile:Profile.proc ->
  (int * int * int * int) list

(** The cost-model greedy layout. *)
val align :
  Ba_machine.Model.t -> Cfg.t -> profile:Profile.proc -> Layout.order

(** {!align} plus the bounded exhaustive prefix search: every permutation
    of the blocks touched by the [top_edges] highest-savings edges
    (skipped when more than [max_blocks] are touched) is forced as an
    initial chain; the cheapest completed layout wins. *)
val align_exhaustive :
  ?top_edges:int ->
  ?max_blocks:int ->
  Ba_machine.Model.t ->
  Cfg.t ->
  profile:Profile.proc ->
  Layout.order
