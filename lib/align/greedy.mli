(** Pettis–Hansen-style greedy branch alignment — the paper's baseline:
    chain blocks along CFG edges in decreasing execution-frequency
    order, no machine cost model. *)

open Ba_cfg
module Profile = Ba_profile.Profile

(** Profiled edges as [(freq, src, dst)], highest frequency first (ties
    by labels); self edges dropped. *)
val edges_by_frequency : Profile.proc -> (int * int * int) list

(** Compute the greedy layout. *)
val align : Cfg.t -> profile:Profile.proc -> Layout.order
