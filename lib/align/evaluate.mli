(** Analytic control-penalty evaluation, with distinct training and
    testing profiles (the paper's cross-validation study): realization
    and predictions come from training, transfer counts from testing. *)

open Ba_cfg
module Profile = Ba_profile.Profile

(** Realize a layout against the training profile; returns the realized
    layout and the per-block static predictions.
    @raise Invalid_argument on invalid layouts. *)
val realize :
  Ba_machine.Model.t ->
  Cfg.t ->
  order:Layout.order ->
  train:Profile.proc ->
  Layout.realized * int option array

(** Total control-penalty cycles of a procedure under the given
    training/testing split, on the model's physical penalties.  With
    [train = test] and the control-penalty objective this equals the
    DTSP walk cost of the layout. *)
val proc_penalty :
  Ba_machine.Model.t ->
  Cfg.t ->
  order:Layout.order ->
  train:Profile.proc ->
  test:Profile.proc ->
  int

(** Sum of {!proc_penalty} over all procedures.
    @raise Invalid_argument on shape mismatch. *)
val program_penalty :
  Ba_machine.Model.t ->
  Cfg.t array ->
  orders:Layout.order array ->
  train:Ba_profile.Profile.t ->
  test:Ba_profile.Profile.t ->
  int
