(** Whole-program alignment driver.

    Ties everything together for a program of several procedures: pick a
    layout per procedure with the chosen method, realize the layouts
    against the training profile, and expose analytic evaluation and
    full-machine simulation (penalties + I-cache + cycles) against any
    testing workload. *)

open Ba_cfg
open Ba_machine
module Profile = Ba_profile.Profile

(** Alignment method. *)
type method_ =
  | Original  (** keep the front end's block order *)
  | Greedy  (** Pettis–Hansen frequency-greedy *)
  | Calder  (** Calder–Grunwald cost-model greedy *)
  | Calder_exhaustive  (** … with the bounded exhaustive prefix search *)
  | Tsp of Tsp_align.config  (** the paper's DTSP-based aligner *)

let method_name = function
  | Original -> "original"
  | Greedy -> "greedy"
  | Calder -> "calder"
  | Calder_exhaustive -> "calder-exhaustive"
  | Tsp _ -> "tsp"

(** A fully aligned and realized program. *)
type aligned = {
  cfgs : Cfg.t array;
  orders : Layout.order array;
  realized : Layout.realized array;
  predicted : int option array array;  (** static predictions, from training *)
  addr : Addr.t;  (** code addresses under this layout *)
  method_ : method_;
}

(** [align_proc method_ p cfg ~profile] lays out one procedure. *)
let align_proc (m : method_) (p : Penalties.t) (cfg : Cfg.t)
    ~(profile : Profile.proc) : Layout.order =
  match m with
  | Original -> Layout.identity cfg
  | Greedy -> Greedy.align cfg ~profile
  | Calder -> Calder.align p cfg ~profile
  | Calder_exhaustive -> Calder.align_exhaustive p cfg ~profile
  | Tsp config -> (Tsp_align.align ~config p cfg ~profile).Tsp_align.order

(** [align m p cfgs ~train] aligns a whole program with method [m],
    realizing every layout against the training profile. *)
let align (m : method_) (p : Penalties.t) (cfgs : Cfg.t array)
    ~(train : Ba_profile.Profile.t) : aligned =
  let orders =
    Array.mapi
      (fun fid cfg -> align_proc m p cfg ~profile:(Profile.proc train fid))
      cfgs
  in
  let realized = Array.make (Array.length cfgs) None in
  let predicted =
    Array.mapi
      (fun fid cfg ->
        let r, pred =
          Evaluate.realize p cfg ~order:orders.(fid)
            ~train:(Profile.proc train fid)
        in
        realized.(fid) <- Some r;
        pred)
      cfgs
  in
  let realized = Array.map Option.get realized in
  let addr = Addr.build (Array.map2 (fun g r -> (g, r)) cfgs realized) in
  { cfgs; orders; realized; predicted; addr; method_ = m }

(** [analytic_penalty p a ~test] is the modelled control penalty of the
    aligned program when executed on the [test] workload's profile. *)
let analytic_penalty (p : Penalties.t) (a : aligned)
    ~(test : Ba_profile.Profile.t) : int =
  let total = ref 0 in
  Array.iteri
    (fun fid cfg ->
      let t = Profile.proc test fid in
      Cfg.iter
        (fun b ->
          let l = b.Block.id in
          total :=
            !total
            + Cost.rterm_cost p a.realized.(fid).Layout.terms.(l)
                ~predicted:a.predicted.(fid).(l)
                ~freqs:(Profile.block_freqs t l))
        cfg)
    a.cfgs;
  !total

(** [simulate ?cycles_config p a ~run] replays an execution (the [run]
    callback feeds trace events into the provided sink) through the full
    machine model and returns the cycle breakdown. *)
let simulate ?cycles_config (p : Penalties.t) (a : aligned)
    ~(run : Trace.sink -> unit) : Cycles.result =
  let ctxs =
    Array.mapi
      (fun fid r -> Pipeline.ctx_of_realized r ~predicted:a.predicted.(fid))
      a.realized
  in
  let sink, result =
    Cycles.make_sink ?config:cycles_config p ~cfgs:a.cfgs ~ctxs ~addr:a.addr
  in
  run sink;
  result ()

(** [check a] verifies that every realized layout is semantically
    faithful to its CFG. *)
let check (a : aligned) =
  let err = ref None in
  Array.iteri
    (fun fid cfg ->
      match Layout.check_semantics cfg a.realized.(fid) with
      | Ok () -> ()
      | Error m ->
          if !err = None then
            err := Some (Printf.sprintf "procedure %d (%s): %s" fid cfg.Cfg.name m))
    a.cfgs;
  match !err with None -> Ok () | Some m -> Error m
