(** Whole-program alignment driver.

    Ties everything together for a program of several procedures: pick a
    layout per procedure with the chosen method, realize the layouts
    against the training profile, and expose analytic evaluation and
    full-machine simulation (penalties + I-cache + cycles) against any
    testing workload.

    Every procedure is an independent DTSP instance, so whole-program
    alignment is a fan-out of {!Ba_engine.Task} values over a pluggable
    {!Ba_engine.Executor} — sequential by default, or a fixed OCaml 5
    domain pool.  Each task owns its RNG (derived from the solver seed
    and the procedure index) and mutates nothing shared, so the aligned
    program is bit-identical at any job count (see
    docs/ARCHITECTURE.md for the exact invariants). *)

open Ba_cfg
open Ba_machine
module Profile = Ba_profile.Profile
module Executor = Ba_engine.Executor
module Task = Ba_engine.Task

(** Alignment method. *)
type method_ =
  | Original  (** keep the front end's block order *)
  | Greedy  (** Pettis–Hansen frequency-greedy *)
  | Calder  (** Calder–Grunwald cost-model greedy *)
  | Calder_exhaustive  (** … with the bounded exhaustive prefix search *)
  | Btfnt  (** chain-greedy for BTFNT-class machines (footnote 3) *)
  | Tsp of Tsp_align.config  (** the paper's DTSP-based aligner *)

let method_name = function
  | Original -> "original"
  | Greedy -> "greedy"
  | Calder -> "calder"
  | Calder_exhaustive -> "calder-exhaustive"
  | Btfnt -> "btfnt"
  | Tsp _ -> "tsp"

(** The pipeline seed tasks derive their RNGs from: the solver seed for
    TSP runs (the only randomized method), 0 otherwise. *)
let method_seed = function
  | Tsp config -> config.Tsp_align.solver.Ba_tsp.Iterated.seed
  | Original | Greedy | Calder | Calder_exhaustive | Btfnt -> 0

(** A fully aligned and realized program. *)
type aligned = {
  cfgs : Cfg.t array;
  orders : Layout.order array;
  realized : Layout.realized array;
  predicted : int option array array;  (** static predictions, from training *)
  addr : Addr.t;  (** code addresses under this layout *)
  method_ : method_;
}

(** [align_proc ?rng method_ model cfg ~profile] lays out one procedure.
    [rng] is the enclosing task's stream; only the TSP solver draws
    from it. *)
let align_proc ?rng (m : method_) (model : Model.t) (cfg : Cfg.t)
    ~(profile : Profile.proc) : Layout.order =
  match m with
  | Original -> Layout.identity cfg
  | Greedy -> Greedy.align cfg ~profile
  | Calder -> Calder.align model cfg ~profile
  | Calder_exhaustive -> Calder.align_exhaustive model cfg ~profile
  | Btfnt -> Btfnt.align model cfg ~profile
  | Tsp config ->
      (Tsp_align.align ~config ?rng model cfg ~profile).Tsp_align.order

(** Merge per-procedure task values (already in procedure order) and
    assemble the program: addresses are laid out sequentially because
    each procedure's base depends on every predecessor's size. *)
let assemble (m : method_) (cfgs : Cfg.t array) parts : aligned =
  let orders = Array.map (fun (o, _, _) -> o) parts in
  let realized = Array.map (fun (_, r, _) -> r) parts in
  let predicted = Array.map (fun (_, _, p) -> p) parts in
  let addr = Addr.build (Array.map2 (fun g r -> (g, r)) cfgs realized) in
  { cfgs; orders; realized; predicted; addr; method_ = m }

(** [align ?executor m model cfgs ~train] aligns a whole program with
    method [m] under [model], realizing every layout against the
    training profile.  One task per procedure; the result does not
    depend on the executor. *)
let align ?(executor = Executor.Seq) (m : method_) (model : Model.t)
    (cfgs : Cfg.t array) ~(train : Ba_profile.Profile.t) : aligned =
  let task fid cfg =
    Task.make ~id:fid ~label:cfg.Cfg.name (fun ctx ->
        let profile = Profile.proc train fid in
        let order =
          Task.staged ctx Task.Solve (fun () ->
              align_proc ~rng:(Task.rng ctx) m model cfg ~profile)
        in
        let r, pred =
          Task.staged ctx Task.Realize (fun () ->
              Evaluate.realize model cfg ~order ~train:profile)
        in
        (order, r, pred))
  in
  let outcomes =
    Task.run_all ~seed:(method_seed m) executor (Array.mapi task cfgs)
  in
  assemble m cfgs (Array.map (fun o -> o.Task.value) outcomes)

(** [analytic_penalty model a ~test] is the modelled control penalty of
    the aligned program when executed on the [test] workload's profile,
    on the model's physical penalties. *)
let analytic_penalty (model : Model.t) (a : aligned)
    ~(test : Ba_profile.Profile.t) : int =
  let p = model.Model.penalties in
  let total = ref 0 in
  Array.iteri
    (fun fid cfg ->
      let t = Profile.proc test fid in
      Cfg.iter
        (fun b ->
          let l = b.Block.id in
          total :=
            !total
            + Cost.rterm_cost p a.realized.(fid).Layout.terms.(l)
                ~predicted:a.predicted.(fid).(l)
                ~freqs:(Profile.block_freqs t l))
        cfg)
    a.cfgs;
  !total

(** [ext_tsp_score ?params a ~test] is the scaled Ext-TSP score of the
    aligned program on the [test] workload's profile — higher is better.
    Computed from the byte-accurate addresses of the realized layout
    ({!Ba_machine.Model.score_proc}); defined for layouts produced under
    {e any} model, which is how the bench reports both objectives side
    by side. *)
let ext_tsp_score ?(params = Model.default_ext_tsp) (a : aligned)
    ~(test : Ba_profile.Profile.t) : int =
  let total = ref 0 in
  Array.iteri
    (fun fid _cfg ->
      let t = Profile.proc test fid in
      total :=
        !total
        + Model.score_proc params ~proc:a.addr.Addr.procs.(fid)
            ~realized:a.realized.(fid)
            ~freqs:(fun l -> Profile.block_freqs t l))
    a.cfgs;
  !total

(** [simulate ?cycles_config model a ~run] replays an execution (the
    [run] callback feeds trace events into the provided sink) through
    the full machine model and returns the cycle breakdown. *)
let simulate ?cycles_config (model : Model.t) (a : aligned)
    ~(run : Trace.sink -> unit) : Cycles.result =
  let ctxs =
    Array.mapi
      (fun fid r -> Pipeline.ctx_of_realized r ~predicted:a.predicted.(fid))
      a.realized
  in
  let sink, result =
    Cycles.make_sink ?config:cycles_config model ~cfgs:a.cfgs ~ctxs
      ~addr:a.addr
  in
  run sink;
  result ()

(** [check a] verifies that every realized layout is semantically
    faithful to its CFG. *)
let check (a : aligned) =
  let err = ref None in
  Array.iteri
    (fun fid cfg ->
      match Layout.check_semantics cfg a.realized.(fid) with
      | Ok () -> ()
      | Error m ->
          if !err = None then
            err := Some (Printf.sprintf "procedure %d (%s): %s" fid cfg.Cfg.name m))
    a.cfgs;
  match !err with None -> Ok () | Some m -> Error m

(* ------------------------------------------------------------------ *)
(* Checked alignment: validation, budgets and graceful degradation.    *)

module Errors = Ba_robust.Errors
module Budget = Ba_robust.Budget

(** One procedure that could not be aligned with the requested method and
    was degraded to a cheaper one. *)
type fallback = {
  proc : int;
  proc_name : string;
  requested : method_;
  used : method_;
  reason : Errors.t;  (** why the first method in the chain gave up *)
}

(** A checked alignment: the program plus a record of every degradation
    that happened on the way. *)
type report = { aligned : aligned; fallbacks : fallback list }

let pp_fallback ppf f =
  Fmt.pf ppf "procedure %d (%s): %s -> %s: %a" f.proc f.proc_name
    (method_name f.requested) (method_name f.used) Errors.pp f.reason

(** The deterministic degradation chain of a method, most capable first.
    Greedy is the designated cheap safety net — it runs even on an
    exhausted budget — and Original (the identity layout) can only fail
    if the CFG itself is broken, which validation rules out. *)
let chain = function
  | Tsp config -> [ Tsp config; Calder; Greedy; Original ]
  | Calder_exhaustive -> [ Calder_exhaustive; Calder; Greedy; Original ]
  | Calder -> [ Calder; Greedy; Original ]
  | Btfnt -> [ Btfnt; Greedy; Original ]
  | Greedy -> [ Greedy; Original ]
  | Original -> [ Original ]

(** Attempt one method on one procedure under the shared budget.
    Methods that do real search (TSP, the Calder variants) refuse to
    start on an exhausted budget; Greedy and Original always run. *)
let try_method ?rng ?initial (m : method_) (model : Model.t) (cfg : Cfg.t)
    ~fid ~(profile : Profile.proc) ~(budget : Budget.t) :
    (Layout.order, Errors.t) result =
  let guard f =
    match Budget.exhausted budget with
    | true -> Error (Budget.timeout_error ~proc:fid budget)
    | false -> Errors.catch ~where:(method_name m) f
  in
  match m with
  | Original -> Ok (Layout.identity cfg)
  | Greedy -> Errors.catch ~where:"greedy" (fun () -> Greedy.align cfg ~profile)
  | Calder -> guard (fun () -> Calder.align model cfg ~profile)
  | Calder_exhaustive ->
      guard (fun () -> Calder.align_exhaustive model cfg ~profile)
  | Btfnt -> guard (fun () -> Btfnt.align model cfg ~profile)
  | Tsp config -> (
      match
        Errors.catch ~where:"tsp" (fun () ->
            Tsp_align.align ~config ?rng ~budget ?initial model cfg ~profile)
      with
      | Error e -> Error e
      | Ok r -> (
          match r.Tsp_align.degraded with
          | Some (Errors.Solver_timeout t) ->
              Error (Errors.Solver_timeout { t with proc = Some fid })
          | Some e -> Error e
          | None -> Ok r.Tsp_align.order))

(** What one checked per-procedure task yields: the realized layout
    plus the degradation that produced it, if any. *)
type checked_proc = {
  c_order : Layout.order;
  c_realized : Layout.realized;
  c_predicted : int option array;
  c_fallback : fallback option;
}

(** [align_checked ?executor ?deadline_ms ?fallback m p cfgs ~train] is
    the production entry point: validate the CFGs and the profile, then
    lay out every procedure under a shared wall-clock budget, degrading
    deterministically along {!chain} when a method times out, fails or
    produces a semantically unfaithful layout.  Degradation is
    {e per-task}: one procedure falling back never aborts or degrades
    its siblings.  With [fallback] off (default on), the first
    degradation (lowest procedure index) is returned as an error
    instead.  Never raises.

    Under [executor = Pool _] all procedures are attempted even when an
    early one fails; the reported error is still the lowest-index one,
    so the returned value matches the sequential run whenever the
    budget does not expire mid-run (see docs/ARCHITECTURE.md). *)
let align_checked ?(executor = Executor.Seq) ?deadline_ms ?(fallback = true)
    ?(warm_start = fun _ -> None) (m : method_) (model : Model.t)
    (cfgs : Cfg.t array) ~(train : Ba_profile.Profile.t) :
    (report, Errors.t) result =
  let ( let* ) r f = Result.bind r f in
  (* validation is the lint gate: the ba_check rule catalogue runs over
     the CFGs and the profile, and the first Error finding (in
     catalogue order, matching the legacy validation order) is routed
     into the typed-error pipeline *)
  let* () = Ba_check.Lint.gate ~profile:train cfgs in
  let budget = Budget.create ?deadline_ms () in
  let realize_proc fid cfg order profile =
    let* r, pred =
      Errors.catch ~where:"realize" (fun () ->
          Evaluate.realize model cfg ~order ~train:profile)
    in
    match Layout.check_semantics cfg r with
    | Ok () -> Ok (order, r, pred)
    | Error reason ->
        Error
          (Errors.Invalid_layout
             { proc = Some fid; name = Some cfg.Cfg.name; reason })
  in
  (* one task per procedure; the whole fallback chain runs inside the
     task, so degradation is per-procedure and never global *)
  let align_one ctx fid cfg : (checked_proc, Errors.t) result =
    let profile = Profile.proc train fid in
    let rng = Task.rng ctx in
    let rec attempt first_reason = function
      | [] ->
          (* unreachable: Original + a validated CFG always realizes *)
          Error
            (Option.value first_reason
               ~default:
                 (Errors.Internal
                    { where = "align_checked"; reason = "empty method chain" }))
      | m' :: rest -> (
          let result =
            (* warm starts only make sense for the search method; the
               deterministic fallbacks ignore them *)
            let initial =
              match m' with Tsp _ -> warm_start fid | _ -> None
            in
            let* order =
              Task.staged ctx Task.Solve (fun () ->
                  try_method ~rng ?initial m' model cfg ~fid ~profile ~budget)
            in
            Task.staged ctx Task.Verify (fun () ->
                realize_proc fid cfg order profile)
          in
          match result with
          | Ok (order, r, pred) ->
              let fb =
                if m' = m then None
                else
                  let reason =
                    Option.value first_reason
                      ~default:
                        (Errors.Internal
                           { where = "align_checked"; reason = "unknown" })
                  in
                  Some
                    {
                      proc = fid;
                      proc_name = cfg.Cfg.name;
                      requested = m;
                      used = m';
                      reason;
                    }
              in
              Ok
                {
                  c_order = order;
                  c_realized = r;
                  c_predicted = pred;
                  c_fallback = fb;
                }
          | Error e ->
              let first_reason =
                match first_reason with Some _ -> first_reason | None -> Some e
              in
              if fallback then attempt first_reason rest else Error e)
    in
    attempt None (chain m)
  in
  let tasks =
    Array.mapi
      (fun fid cfg ->
        Task.make ~id:fid ~label:cfg.Cfg.name (fun ctx ->
            align_one ctx fid cfg))
      cfgs
  in
  let outcomes = Task.run_all ~seed:(method_seed m) executor tasks in
  (* deterministic merge: procedure order; the first error by index is
     the one a sequential run would have stopped at *)
  let* parts =
    Array.fold_right
      (fun o acc ->
        let* part = o.Task.value in
        let* acc = acc in
        Ok (part :: acc))
      outcomes (Ok [])
  in
  let parts = Array.of_list parts in
  let* addr =
    Errors.catch ~where:"addr" (fun () ->
        Addr.build
          (Array.map2 (fun g part -> (g, part.c_realized)) cfgs parts))
  in
  let fallbacks =
    Array.to_list parts |> List.filter_map (fun part -> part.c_fallback)
  in
  (* observability: one fallback-transition event per degraded
     procedure, counted after the deterministic merge *)
  Ba_obs.Metrics.incr ~n:(List.length fallbacks) Ba_obs.Metrics.Fallbacks;
  Ok
    {
      aligned =
        {
          cfgs;
          orders = Array.map (fun part -> part.c_order) parts;
          realized = Array.map (fun part -> part.c_realized) parts;
          predicted = Array.map (fun part -> part.c_predicted) parts;
          addr;
          method_ = m;
        };
      fallbacks;
    }
